//! Hand-written lexer for MiniHPC.
//!
//! Produces a flat `Vec<Token>` terminated by an `Eof` token. Lexical
//! errors are reported through [`Diagnostics`] and the offending bytes are
//! skipped so that parsing can proceed and report further errors.

use crate::diag::Diagnostics;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lex `src` completely.
///
/// Always returns a token stream ending in `Eof`; on malformed input the
/// diagnostics collection will contain errors.
pub fn lex(src: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer::new(src, diags).run()
}

struct Lexer<'a, 'd> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: &'d mut Diagnostics,
}

impl<'a, 'd> Lexer<'a, 'd> {
    fn new(src: &'a str, diags: &'d mut Diagnostics) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags,
        }
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn push(&mut self, kind: TokenKind, lo: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(lo as u32, self.pos as u32)));
    }

    fn run(mut self) -> Vec<Token> {
        loop {
            self.skip_trivia();
            let lo = self.pos;
            if self.pos >= self.src.len() {
                self.push(TokenKind::Eof, lo);
                break;
            }
            let b = self.peek();
            match b {
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, lo);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, lo);
                }
                b'{' => {
                    self.bump();
                    self.push(TokenKind::LBrace, lo);
                }
                b'}' => {
                    self.bump();
                    self.push(TokenKind::RBrace, lo);
                }
                b'[' => {
                    self.bump();
                    self.push(TokenKind::LBracket, lo);
                }
                b']' => {
                    self.bump();
                    self.push(TokenKind::RBracket, lo);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, lo);
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semi, lo);
                }
                b':' => {
                    self.bump();
                    self.push(TokenKind::Colon, lo);
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus, lo);
                }
                b'-' => {
                    self.bump();
                    if self.peek() == b'>' {
                        self.bump();
                        self.push(TokenKind::Arrow, lo);
                    } else {
                        self.push(TokenKind::Minus, lo);
                    }
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star, lo);
                }
                b'/' => {
                    self.bump();
                    self.push(TokenKind::Slash, lo);
                }
                b'%' => {
                    self.bump();
                    self.push(TokenKind::Percent, lo);
                }
                b'=' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        self.push(TokenKind::EqEq, lo);
                    } else {
                        self.push(TokenKind::Assign, lo);
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        self.push(TokenKind::NotEq, lo);
                    } else {
                        self.push(TokenKind::Not, lo);
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        self.push(TokenKind::Le, lo);
                    } else {
                        self.push(TokenKind::Lt, lo);
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        self.push(TokenKind::Ge, lo);
                    } else {
                        self.push(TokenKind::Gt, lo);
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == b'&' {
                        self.bump();
                        self.push(TokenKind::AndAnd, lo);
                    } else {
                        self.diags.error(
                            "lex-error",
                            "unexpected `&`; did you mean `&&`?",
                            Span::new(lo as u32, self.pos as u32),
                        );
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == b'|' {
                        self.bump();
                        self.push(TokenKind::OrOr, lo);
                    } else {
                        self.diags.error(
                            "lex-error",
                            "unexpected `|`; did you mean `||`?",
                            Span::new(lo as u32, self.pos as u32),
                        );
                    }
                }
                b'.' => {
                    self.bump();
                    if self.peek() == b'.' {
                        self.bump();
                        self.push(TokenKind::DotDot, lo);
                    } else {
                        self.diags.error(
                            "lex-error",
                            "unexpected `.`; standalone dots are not valid",
                            Span::new(lo as u32, self.pos as u32),
                        );
                    }
                }
                _ => {
                    self.bump();
                    self.diags.error(
                        "lex-error",
                        format!("unexpected character `{}`", b as char),
                        Span::new(lo as u32, self.pos as u32),
                    );
                }
            }
        }
        self.tokens
    }

    /// Skip whitespace, `//` line comments and `/* */` block comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let lo = self.pos;
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while self.pos < self.src.len() {
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            closed = true;
                            break;
                        }
                        self.bump();
                    }
                    if !closed {
                        self.diags.error(
                            "lex-error",
                            "unterminated block comment",
                            Span::new(lo as u32, self.pos as u32),
                        );
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self) {
        let lo = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        // A float has `<digits> . <digits>`; take care not to consume the
        // `..` of a range expression.
        let is_float = self.peek() == b'.' && self.peek2().is_ascii_digit();
        if is_float {
            self.bump(); // '.'
            while self.peek().is_ascii_digit() {
                self.bump();
            }
            // Optional exponent.
            if self.peek() == b'e' || self.peek() == b'E' {
                let save = self.pos;
                self.bump();
                if self.peek() == b'+' || self.peek() == b'-' {
                    self.bump();
                }
                if self.peek().is_ascii_digit() {
                    while self.peek().is_ascii_digit() {
                        self.bump();
                    }
                } else {
                    self.pos = save;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii digits");
        let span = Span::new(lo as u32, self.pos as u32);
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.push(TokenKind::Float(v), lo),
                Err(_) => {
                    self.diags
                        .error("lex-error", format!("invalid float literal `{text}`"), span)
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push(TokenKind::Int(v), lo),
                Err(_) => self.diags.error(
                    "lex-error",
                    format!("integer literal `{text}` out of range"),
                    span,
                ),
            }
        }
    }

    fn ident(&mut self) {
        let lo = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii ident");
        match TokenKind::keyword(text) {
            Some(kw) => self.push(kw, lo),
            None => self.push(TokenKind::Ident(text.to_string()), lo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_ok(src: &str) -> Vec<TokenKind> {
        let mut diags = Diagnostics::new();
        let toks = lex(src, &mut diags);
        assert!(!diags.has_errors(), "unexpected errors: {diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(lex_ok(""), vec![TokenKind::Eof]);
        assert_eq!(lex_ok("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn keywords_and_idents() {
        let toks = lex_ok("fn main parallel single MPI_Barrier x_1");
        assert_eq!(
            toks,
            vec![
                TokenKind::Fn,
                TokenKind::Ident("main".into()),
                TokenKind::Parallel,
                TokenKind::Single,
                TokenKind::Ident("MPI_Barrier".into()),
                TokenKind::Ident("x_1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = lex_ok("0 42 3.5 1.0e3 2.5e-2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = lex_ok("0..10");
        assert_eq!(
            toks,
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(10),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex_ok("== != <= >= < > && || ! -> .. = + - * / %");
        assert_eq!(
            toks,
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Not,
                TokenKind::Arrow,
                TokenKind::DotDot,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex_ok("a // comment\n b /* multi\nline */ c");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let mut diags = Diagnostics::new();
        lex("a /* never closed", &mut diags);
        assert!(diags.has_errors());
    }

    #[test]
    fn stray_characters_are_errors_but_lexing_continues() {
        let mut diags = Diagnostics::new();
        let toks = lex("a $ b", &mut diags);
        assert!(diags.has_errors());
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn single_amp_and_pipe_are_errors() {
        let mut diags = Diagnostics::new();
        lex("a & b | c", &mut diags);
        assert_eq!(diags.count(crate::diag::Severity::Error), 2);
    }

    #[test]
    fn spans_are_correct() {
        let mut diags = Diagnostics::new();
        let toks = lex("let xy = 12;", &mut diags);
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 6));
        assert_eq!(toks[2].span, Span::new(7, 8));
        assert_eq!(toks[3].span, Span::new(9, 11));
        assert_eq!(toks[4].span, Span::new(11, 12));
    }

    #[test]
    fn huge_integer_is_error() {
        let mut diags = Diagnostics::new();
        lex("999999999999999999999999999", &mut diags);
        assert!(diags.has_errors());
    }
}
