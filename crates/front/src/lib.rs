//! # parcoach-front — MiniHPC frontend
//!
//! The frontend substrate for the PARCOACH-hybrid reproduction: a small
//! imperative language ("MiniHPC") able to express the hybrid MPI+OpenMP
//! programs the paper validates. OpenMP constructs (`parallel`, `single`,
//! `master`, `critical`, `barrier`, `pfor`, `sections`) are first-class
//! structured statements — semantically the same as pragmas over
//! structured blocks, producing the same control-flow graphs. MPI
//! operations are builtin calls (`MPI_Barrier()`, `MPI_Allreduce(x, SUM)`,
//! …).
//!
//! Pipeline: [`parse`] → [`sema::check_program`] → (then `parcoach-ir`
//! lowers to a CFG).
//!
//! ```
//! use parcoach_front::parse_and_check;
//!
//! let src = r#"
//!     fn main() {
//!         MPI_Init();
//!         parallel num_threads(4) {
//!             single { MPI_Barrier(); }
//!         }
//!         MPI_Finalize();
//!     }
//! "#;
//! let unit = parse_and_check("demo.mh", src).expect("valid program");
//! assert_eq!(unit.program.functions.len(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, Block, CollectiveCall, CollectiveKind, Expr, ExprKind, Function, Ident, Intrinsic,
    LValue, MpiOp, OmpStmt, Param, Program, ReduceOp, Stmt, StmtKind, ThreadLevel, Type, UnOp,
};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use span::{LineCol, SourceMap, Span};

/// A fully parsed and semantically checked compilation unit.
#[derive(Debug, Clone)]
pub struct CheckedUnit {
    /// The AST.
    pub program: Program,
    /// Source map for rendering locations.
    pub source_map: SourceMap,
    /// Function signatures.
    pub signatures: std::collections::HashMap<String, sema::Signature>,
    /// Non-error diagnostics produced along the way.
    pub warnings: Diagnostics,
}

/// Parse and semantically check a program in one call.
///
/// On failure returns the full diagnostics (errors and warnings) plus the
/// source map needed to render them.
pub fn parse_and_check(name: &str, src: &str) -> Result<CheckedUnit, (Diagnostics, SourceMap)> {
    let source_map = SourceMap::new(name, src);
    let (program, mut diags) = parser::parse_program(src);
    let sema = if diags.has_errors() {
        Default::default()
    } else {
        sema::check_program(&program, &mut diags)
    };
    if diags.has_errors() {
        Err((diags, source_map))
    } else {
        Ok(CheckedUnit {
            program,
            source_map,
            signatures: sema.signatures,
            warnings: diags,
        })
    }
}

/// Parse only (no sema); used by tools that want partial ASTs.
pub fn parse(src: &str) -> (Program, Diagnostics) {
    parser::parse_program(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_check_ok() {
        let unit = parse_and_check("t.mh", "fn main() { let x = 1; }").unwrap();
        assert!(unit.warnings.is_empty());
        assert!(unit.signatures.contains_key("main"));
    }

    #[test]
    fn parse_and_check_parse_error() {
        let err = parse_and_check("t.mh", "fn main( { }").unwrap_err();
        assert!(err.0.has_errors());
    }

    #[test]
    fn parse_and_check_sema_error() {
        let err = parse_and_check("t.mh", "fn main() { undeclared = 3; }").unwrap_err();
        assert!(err.0.has_errors());
        assert!(err.0.iter().any(|d| d.code == "undeclared-variable"));
    }
}
