//! Token definitions for the MiniHPC language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Floating-point literal, e.g. `3.25`.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// Identifier or keyword-candidate name.
    Ident(String),

    // Keywords (control flow and declarations)
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `print`
    Print,

    // Keywords (OpenMP-model constructs)
    /// `parallel`
    Parallel,
    /// `single`
    Single,
    /// `master`
    Master,
    /// `critical`
    Critical,
    /// `barrier`
    Barrier,
    /// `pfor` — worksharing loop (`#pragma omp for`)
    PFor,
    /// `sections`
    Sections,
    /// `section`
    Section,
    /// `nowait` clause
    Nowait,
    /// `num_threads` clause
    NumThreadsClause,

    // Types
    /// `int`
    TyInt,
    /// `float`
    TyFloat,
    /// `bool`
    TyBool,
    /// `void`
    TyVoid,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `..`
    DotDot,

    // Operators
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,

    /// End of file.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Bool(v) => format!("`{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Fn => "`fn`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::For => "`for`".into(),
            TokenKind::In => "`in`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::Break => "`break`".into(),
            TokenKind::Continue => "`continue`".into(),
            TokenKind::Print => "`print`".into(),
            TokenKind::Parallel => "`parallel`".into(),
            TokenKind::Single => "`single`".into(),
            TokenKind::Master => "`master`".into(),
            TokenKind::Critical => "`critical`".into(),
            TokenKind::Barrier => "`barrier`".into(),
            TokenKind::PFor => "`pfor`".into(),
            TokenKind::Sections => "`sections`".into(),
            TokenKind::Section => "`section`".into(),
            TokenKind::Nowait => "`nowait`".into(),
            TokenKind::NumThreadsClause => "`num_threads`".into(),
            TokenKind::TyInt => "`int`".into(),
            TokenKind::TyFloat => "`float`".into(),
            TokenKind::TyBool => "`bool`".into(),
            TokenKind::TyVoid => "`void`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::DotDot => "`..`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Not => "`!`".into(),
            TokenKind::Eof => "end of file".into(),
        }
    }

    /// Map an identifier string to its keyword token, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "print" => TokenKind::Print,
            "parallel" => TokenKind::Parallel,
            "single" => TokenKind::Single,
            "master" => TokenKind::Master,
            "critical" => TokenKind::Critical,
            "barrier" => TokenKind::Barrier,
            "pfor" => TokenKind::PFor,
            "sections" => TokenKind::Sections,
            "section" => TokenKind::Section,
            "nowait" => TokenKind::Nowait,
            "num_threads" => TokenKind::NumThreadsClause,
            "int" => TokenKind::TyInt,
            "float" => TokenKind::TyFloat,
            "bool" => TokenKind::TyBool,
            "void" => TokenKind::TyVoid,
            "true" => TokenKind::Bool(true),
            "false" => TokenKind::Bool(false),
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("fn"), Some(TokenKind::Fn));
        assert_eq!(TokenKind::keyword("parallel"), Some(TokenKind::Parallel));
        assert_eq!(TokenKind::keyword("nowait"), Some(TokenKind::Nowait));
        assert_eq!(TokenKind::keyword("true"), Some(TokenKind::Bool(true)));
        assert_eq!(TokenKind::keyword("MPI_Barrier"), None);
        assert_eq!(TokenKind::keyword("x"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        for k in [
            TokenKind::Fn,
            TokenKind::DotDot,
            TokenKind::Eof,
            TokenKind::Ident("abc".into()),
            TokenKind::Int(7),
        ] {
            assert!(!k.describe().is_empty());
        }
    }
}
