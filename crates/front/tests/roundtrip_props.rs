//! Property test: pretty-printing is a parser fixpoint for arbitrary
//! generated programs (parse ∘ pretty = id up to spans).
//!
//! Programs are generated from a per-case `parcoach_testutil::Rng` seed;
//! failures print the seed and the generated source.

use parcoach_front::pretty::pretty_program;
use parcoach_front::{parse_and_check, parser::parse_program};
use parcoach_testutil::Rng;

const CASES: u64 = 128;

/// Integer-typed expressions only, so the generated programs type-check.
fn random_expr(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(4) {
        0 => rng.range_i64(0, 1000).to_string(),
        1 => "x".to_string(),
        2 => "rank()".to_string(),
        _ => "size()".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Same 3:1:1:1:1 weighting as the old prop_oneof.
    match rng.pick_weighted(&[3, 1, 1, 1, 1]) {
        0 => leaf(rng),
        1 => {
            let a = random_expr(rng, depth - 1);
            let b = random_expr(rng, depth - 1);
            format!("({a} + {b})")
        }
        2 => {
            let a = random_expr(rng, depth - 1);
            let b = random_expr(rng, depth - 1);
            format!("({a} * {b})")
        }
        3 => {
            let a = random_expr(rng, depth - 1);
            format!("-({a})")
        }
        _ => {
            let a = random_expr(rng, depth - 1);
            if rng.bool() {
                format!("min({a}, 7)")
            } else {
                format!("max({a}, 7)")
            }
        }
    }
}

/// Statements over an `int` variable x (type-correct subset so
/// parse_and_check accepts them).
fn random_stmt(rng: &mut Rng) -> String {
    match rng.below(7) {
        0 => format!("x = {};", random_expr(rng, 2)),
        1 => format!(
            "if (x < {}) {{ x = x + 1; }} else {{ x = x - 1; }}",
            random_expr(rng, 2)
        ),
        2 => format!("for (i in 0..3) {{ x = x + {} % 5; }}", random_expr(rng, 2)),
        3 => "parallel num_threads(2) { single { x = x + 1; } }".to_string(),
        4 => "parallel { master { x = x * 2; } barrier; }".to_string(),
        5 => "MPI_Barrier();".to_string(),
        _ => "let g = MPI_Allgather(x); x = len(g);".to_string(),
    }
}

fn random_program(rng: &mut Rng) -> String {
    let n = rng.below(8);
    let stmts: Vec<String> = (0..n).map(|_| random_stmt(rng)).collect();
    format!("fn main() {{ let x = 1; {} print(x); }}", stmts.join(" "))
}

#[test]
fn pretty_is_parser_fixpoint() {
    for seed in 0..CASES {
        let src = random_program(&mut Rng::new(seed));
        // 1. The generated program must check.
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        // 2. pretty → parse → pretty must be stable.
        let p1 = pretty_program(&unit.program);
        let (prog2, diags) = parse_program(&p1);
        assert!(!diags.has_errors(), "seed {seed}: re-parse failed:\n{p1}");
        let p2 = pretty_program(&prog2);
        assert_eq!(&p1, &p2, "seed {seed}: pretty-print not a fixpoint");
        // 3. Structure is preserved.
        assert_eq!(unit.program.stmt_count(), prog2.stmt_count(), "seed {seed}");
        assert_eq!(
            unit.program.functions.len(),
            prog2.functions.len(),
            "seed {seed}"
        );
    }
}
