//! Property test: pretty-printing is a parser fixpoint for arbitrary
//! generated programs (parse ∘ pretty = id up to spans).

use parcoach_front::pretty::pretty_program;
use parcoach_front::{parse_and_check, parser::parse_program};
use proptest::prelude::*;

/// Integer-typed expressions only, so the generated programs type-check.
fn expr_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("rank()".to_string()),
        Just("size()".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = expr_strategy(depth - 1);
    let sub2 = expr_strategy(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub2.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
        1 => (sub.clone(), sub2.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
        1 => sub.prop_map(|a| format!("-({a})")),
        1 => (sub2, proptest::bool::ANY).prop_map(|(a, lt)| {
            if lt { format!("min({a}, 7)") } else { format!("max({a}, 7)") }
        }),
    ]
    .boxed()
}

fn stmt_strategy() -> impl Strategy<Value = String> {
    // Statements over an `int` variable x (type-correct subset so
    // parse_and_check accepts them).
    let int_expr = expr_strategy(2);
    prop_oneof![
        int_expr.clone().prop_map(|e| format!("x = {e};")),
        int_expr
            .clone()
            .prop_map(|e| format!("if (x < {e}) {{ x = x + 1; }} else {{ x = x - 1; }}")),
        int_expr
            .clone()
            .prop_map(|e| format!("for (i in 0..3) {{ x = x + {e} % 5; }}")),
        Just("parallel num_threads(2) { single { x = x + 1; } }".to_string()),
        Just("parallel { master { x = x * 2; } barrier; }".to_string()),
        Just("MPI_Barrier();".to_string()),
        Just("let g = MPI_Allgather(x); x = len(g);".to_string()),
    ]
}

fn program_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt_strategy(), 0..8).prop_map(|stmts| {
        format!("fn main() {{ let x = 1; {} print(x); }}", stmts.join(" "))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn pretty_is_parser_fixpoint(src in program_strategy()) {
        // 1. The generated program must check.
        let unit = parse_and_check("gen.mh", &src)
            .map_err(|(d, sm)| TestCaseError::fail(d.render(&sm)))?;
        // 2. pretty → parse → pretty must be stable.
        let p1 = pretty_program(&unit.program);
        let (prog2, diags) = parse_program(&p1);
        prop_assert!(!diags.has_errors(), "re-parse failed:\n{p1}");
        let p2 = pretty_program(&prog2);
        prop_assert_eq!(&p1, &p2, "pretty-print not a fixpoint");
        // 3. Structure is preserved.
        prop_assert_eq!(unit.program.stmt_count(), prog2.stmt_count());
        prop_assert_eq!(unit.program.functions.len(), prog2.functions.len());
    }
}
