//! Shared CLI plumbing: the exit-code table, usage text, and the flag
//! parsing every subcommand goes through.
//!
//! The subcommand surface mirrors the daemon's RPC verbs — `check`,
//! `dump`, `diagnostics` — so a script can move between one-shot and
//! resident modes without relearning names, and both modes compile
//! through the same `parcoach_server::Document`.
//!
//! There is exactly one authority for what exit codes mean: [`Exit`].
//! Every subcommand returns one, `main` converts it, and a unit test
//! enumerates the table so a new code cannot be added without updating
//! the contract (and the docs that quote it).

use parcoach_core::{AnalysisSession, AnalysisSessionBuilder, InitialContext};
use std::process::ExitCode;

/// The `parcoachc` exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Statically verified, or the run completed cleanly.
    Clean,
    /// Static warnings only (nothing dynamic detected).
    StaticWarnings,
    /// A dynamic error was detected at run time.
    DynamicError,
    /// Usage or compile error (bad flags, unreadable file, bad source).
    Usage,
}

impl Exit {
    /// The numeric code of this outcome.
    pub fn code(self) -> u8 {
        match self {
            Exit::Clean => 0,
            Exit::StaticWarnings => 1,
            Exit::DynamicError => 2,
            Exit::Usage => 3,
        }
    }

    /// Every outcome with its code and one-line meaning, in code order.
    /// This is the single source the usage text and tests draw from.
    pub const TABLE: [(Exit, u8, &'static str); 4] = [
        (Exit::Clean, 0, "clean (statically verified or ran cleanly)"),
        (Exit::StaticWarnings, 1, "static warnings only"),
        (Exit::DynamicError, 2, "dynamic error detected"),
        (Exit::Usage, 3, "usage or compile error"),
    ];
}

impl From<Exit> for ExitCode {
    fn from(e: Exit) -> ExitCode {
        ExitCode::from(e.code())
    }
}

pub const USAGE: &str = "\
parcoachc — static/dynamic validation of MPI collectives in multi-threaded programs

USAGE:
    parcoachc check <file.mh> [--no-refine] [--context seq|psingle|parallel]
                              [--jobs N] [--deterministic] [--timings]
    parcoachc diagnostics <file.mh> [same flags as check]
    parcoachc run   <file.mh> [--ranks N] [--threads T] [--no-instrument] [--full]
                              [--jobs N] [--deterministic]
    parcoachc dump  <file.mh> [function] [--dot]
    parcoachc workload <BT-MZ|SP-MZ|LU-MZ|EPCC|HERA> <A|B|C>
    parcoachc catalogue

    `check` prints human-readable warnings; `diagnostics` prints the same
    findings as one line of JSON — the daemon's `diagnostics` RPC payload.
    `dump` prints lowered IR (or a Graphviz CFG with --dot).

    --jobs N          analysis pool width (>= 1; default: machine parallelism)
    --deterministic   reproducible pool scheduling (fixed victim-selection seed)
    --timings         print per-phase analysis wall times to stderr
                      (also enabled by PARCOACH_TIMINGS=1)

EXIT CODES:
    0  clean (statically verified or ran cleanly)
    1  static warnings only
    2  dynamic error detected
    3  usage or compile error
";

/// Flags shared by the analysis-running subcommands (`check`,
/// `diagnostics`, `run`): pool sizing plus analysis options, resolved
/// into one [`AnalysisSession`].
#[derive(Default)]
pub struct SessionFlags {
    pub jobs: Option<usize>,
    pub deterministic: bool,
    pub no_refine: bool,
    pub entry_context: Option<InitialContext>,
}

impl SessionFlags {
    /// Try to consume `args[i]` (and possibly its value); returns
    /// whether the flag was recognized, advancing `i` past it if so.
    pub fn eat(&mut self, args: &[String], i: &mut usize) -> Result<bool, String> {
        match args[*i].as_str() {
            "--jobs" => {
                *i += 1;
                self.jobs = Some(parse_num(args.get(*i), "--jobs")?);
            }
            "--deterministic" => self.deterministic = true,
            "--no-refine" => self.no_refine = true,
            "--context" => {
                *i += 1;
                self.entry_context = Some(match args.get(*i).map(String::as_str) {
                    Some("seq") => InitialContext::Sequential,
                    Some("psingle") => InitialContext::ParallelSingle,
                    Some("parallel") => InitialContext::Parallel,
                    other => return Err(format!("--context: bad value {other:?}")),
                });
            }
            _ => return Ok(false),
        }
        *i += 1;
        Ok(true)
    }

    /// Build the session these flags describe.
    pub fn session(&self) -> AnalysisSession {
        let mut b: AnalysisSessionBuilder = AnalysisSession::builder();
        if let Some(j) = self.jobs {
            b = b.jobs(j);
        }
        if self.deterministic {
            b = b.deterministic(true);
        }
        if self.no_refine {
            b = b.refine_matching(false);
        }
        if let Some(ctx) = self.entry_context {
            b = b.entry_context(ctx);
        }
        b.build()
    }
}

/// Parse a numeric flag value that must be at least 1. Anything else —
/// missing, non-numeric, or zero — is a usage error: the message plus
/// the usage text goes to stderr and the process exits 3.
pub fn parse_num(v: Option<&String>, flag: &str) -> Result<usize, String> {
    let raw = v.ok_or_else(|| usage_error(format!("{flag}: missing value")))?;
    match raw.parse::<usize>() {
        Ok(0) => Err(usage_error(format!(
            "{flag}: value must be at least 1, got `{raw}`"
        ))),
        Ok(n) => Ok(n),
        Err(e) => Err(usage_error(format!("{flag}: invalid value `{raw}`: {e}"))),
    }
}

pub fn usage_error(msg: String) -> String {
    format!("{msg}\n{USAGE}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exit-code contract, enumerated: codes are 0..=3 in table
    /// order, unique, and each is documented in the usage text.
    #[test]
    fn exit_code_table_is_complete_and_documented() {
        let mut seen = Vec::new();
        for (i, (exit, code, meaning)) in Exit::TABLE.iter().enumerate() {
            assert_eq!(exit.code(), *code, "{exit:?}");
            assert_eq!(*code as usize, i, "table must be in code order");
            assert!(!seen.contains(code), "duplicate code {code}");
            seen.push(*code);
            assert!(
                USAGE.contains(&format!("{code}  {meaning}")),
                "usage text must document `{code}  {meaning}`"
            );
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn session_flags_eat_shared_flags() {
        let args: Vec<String> = ["--jobs", "3", "--deterministic", "--whatever"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut f = SessionFlags::default();
        let mut i = 0;
        assert!(f.eat(&args, &mut i).unwrap());
        assert!(f.eat(&args, &mut i).unwrap());
        assert!(!f.eat(&args, &mut i).unwrap()); // --whatever is not ours
        assert_eq!(i, 3);
        assert_eq!(f.jobs, Some(3));
        assert!(f.deterministic);
    }

    #[test]
    fn bad_numeric_values_are_usage_errors() {
        for bad in [None, Some("0"), Some("x")] {
            let owned = bad.map(str::to_string);
            let err = parse_num(owned.as_ref(), "--jobs").unwrap_err();
            assert!(err.contains("--jobs"), "{err}");
            assert!(err.contains("USAGE"), "usage text must follow: {err}");
        }
    }
}
