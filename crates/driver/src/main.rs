//! `parcoachc` — command-line driver.
//!
//! ```text
//! parcoachc check  <file.mh> [--no-refine] [--context seq|psingle|parallel]
//!                            [--jobs N] [--deterministic] [--timings]
//! parcoachc run    <file.mh> [--ranks N] [--threads T] [--no-instrument]
//!                            [--jobs N] [--deterministic]
//! parcoachc dump-cfg <file.mh> [function]
//! parcoachc dump-ir  <file.mh> [function]
//! parcoachc workload <name> <class>      # print a generated benchmark
//! parcoachc catalogue                    # list the error catalogue
//! ```
//!
//! `--jobs N` sizes the analysis thread pool (default: the machine's
//! parallelism, or `PARCOACH_JOBS`); `--deterministic` makes pool
//! scheduling reproducible. Reports are byte-identical for any `--jobs`
//! either way. `--timings` (or `PARCOACH_TIMINGS=1`) prints the
//! per-phase wall-time breakdown of the static analysis to stderr.
//!
//! Exit codes: 0 = clean, 1 = static warnings only, 2 = dynamic error
//! detected, 3 = usage/compile error. Bad flag values (`--jobs 0`,
//! `--ranks x`) are usage errors: a diagnostic plus the usage text on
//! stderr, exit 3.

use parcoach_core::{
    analyze_module, analyze_module_timed, instrument_module, AnalysisOptions, InitialContext,
    InstrumentMode,
};
use parcoach_front::parse_and_check;
use parcoach_interp::{Executor, RunConfig};
use parcoach_ir::lower::lower_program;
use parcoach_workloads::{error_catalogue, figure1_suite, WorkloadClass};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("parcoachc: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "check" => cmd_check(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "dump-cfg" => cmd_dump(&args[1..], true),
        "dump-ir" => cmd_dump(&args[1..], false),
        "workload" => cmd_workload(&args[1..]),
        "catalogue" => cmd_catalogue(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
parcoachc — static/dynamic validation of MPI collectives in multi-threaded programs

USAGE:
    parcoachc check  <file.mh> [--no-refine] [--context seq|psingle|parallel]
                               [--jobs N] [--deterministic] [--timings]
    parcoachc run    <file.mh> [--ranks N] [--threads T] [--no-instrument] [--full]
                               [--jobs N] [--deterministic]
    parcoachc dump-cfg <file.mh> [function]
    parcoachc dump-ir  <file.mh> [function]
    parcoachc workload <BT-MZ|SP-MZ|LU-MZ|EPCC|HERA> <A|B|C>
    parcoachc catalogue

    --jobs N          analysis pool width (>= 1; default: machine parallelism)
    --deterministic   reproducible pool scheduling (fixed victim-selection seed)
    --timings         print per-phase analysis wall times to stderr
                      (also enabled by PARCOACH_TIMINGS=1)
";

struct Loaded {
    unit: parcoach_front::CheckedUnit,
    module: parcoach_ir::Module,
}

fn load(path: &str) -> Result<Loaded, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let unit = parse_and_check(path, &src).map_err(|(d, sm)| d.render(&sm))?;
    let module = lower_program(&unit.program, &unit.signatures);
    let errs = parcoach_ir::verify_module(&module);
    if !errs.is_empty() {
        return Err(format!("internal IR verification failure: {errs:?}"));
    }
    Ok(Loaded { unit, module })
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("check: missing file")?;
    let mut opts = AnalysisOptions::default();
    let mut pool = PoolFlags::default();
    let mut timings = std::env::var("PARCOACH_TIMINGS").is_ok_and(|v| v == "1");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--no-refine" => opts.refine_matching = false,
            "--timings" => timings = true,
            "--context" => {
                i += 1;
                opts.entry_context = match args.get(i).map(String::as_str) {
                    Some("seq") => InitialContext::Sequential,
                    Some("psingle") => InitialContext::ParallelSingle,
                    Some("parallel") => InitialContext::Parallel,
                    other => return Err(format!("--context: bad value {other:?}")),
                };
            }
            "--jobs" => {
                i += 1;
                pool.jobs = Some(parse_num(args.get(i), "--jobs")?);
            }
            "--deterministic" => pool.deterministic = true,
            other => return Err(format!("check: unknown flag `{other}`")),
        }
        i += 1;
    }
    pool.apply();
    let loaded = load(path)?;
    let report = if timings {
        let (report, t) = analyze_module_timed(&loaded.module, &opts, parcoach_pool::global());
        eprintln!("--- static phase timings ---");
        for (phase, dur) in t.lines() {
            eprintln!("{phase:<12} {:>10.3} ms", dur.as_secs_f64() * 1e3);
        }
        report
    } else {
        analyze_module(&loaded.module, &opts)
    };
    println!("{}", report.render(&loaded.unit.source_map));
    if report.is_clean() {
        println!("verified statically: no instrumentation needed");
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("run: missing file")?;
    let mut cfg = RunConfig::default();
    let mut instrument = true;
    let mut mode = InstrumentMode::Selective;
    let mut pool = PoolFlags::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ranks" => {
                i += 1;
                cfg.ranks = parse_num(args.get(i), "--ranks")?;
            }
            "--threads" => {
                i += 1;
                cfg.default_threads = parse_num(args.get(i), "--threads")?;
            }
            "--no-instrument" => instrument = false,
            "--full" => mode = InstrumentMode::Full,
            "--jobs" => {
                i += 1;
                pool.jobs = Some(parse_num(args.get(i), "--jobs")?);
            }
            "--deterministic" => pool.deterministic = true,
            other => return Err(format!("run: unknown flag `{other}`")),
        }
        i += 1;
    }
    pool.apply();
    let loaded = load(path)?;
    let report = analyze_module(&loaded.module, &AnalysisOptions::default());
    if !report.is_clean() {
        println!("--- static warnings ---");
        println!("{}", report.render(&loaded.unit.source_map));
        println!();
    }
    let module = if instrument {
        let (m, stats) = instrument_module(&loaded.module, &report, mode);
        println!(
            "instrumentation: {} CC, {} return-CC, {} monothread assert(s), {} concurrency site(s), {} p2p epoch(s)",
            stats.cc_collective,
            stats.cc_return,
            stats.monothread_asserts,
            stats.concurrency_sites,
            stats.p2p_epochs
        );
        m
    } else {
        loaded.module
    };
    let run = Executor::new(module, cfg).run();
    for line in &run.output {
        println!("{line}");
    }
    if run.is_clean() {
        println!("--- run completed cleanly ---");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("--- run failed ---");
        for e in &run.errors {
            let line = loaded.unit.source_map.line_of(e.span);
            println!("{path}:{line}: {e} [{}]", e.kind.code());
        }
        if run.detected_by_check() {
            println!("(intercepted by a PARCOACH dynamic check)");
        }
        Ok(ExitCode::from(2))
    }
}

fn cmd_dump(args: &[String], dot: bool) -> Result<ExitCode, String> {
    let path = args.first().ok_or("dump: missing file")?;
    let which = args.get(1).map(String::as_str);
    let loaded = load(path)?;
    for f in &loaded.module.funcs {
        if let Some(name) = which {
            if f.name != name {
                continue;
            }
        }
        if dot {
            println!("{}", parcoach_ir::dot::func_to_dot(f));
        } else {
            println!("{}", f.dump());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_workload(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("workload: missing name")?;
    let class = match args.get(1).map(String::as_str) {
        Some("A") | None => WorkloadClass::A,
        Some("B") => WorkloadClass::B,
        Some("C") => WorkloadClass::C,
        other => return Err(format!("workload: bad class {other:?}")),
    };
    let suite = figure1_suite(class);
    let w = suite
        .iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("unknown workload `{name}` (try BT-MZ, SP-MZ, LU-MZ, EPCC, HERA)")
        })?;
    print!("{}", w.source);
    Ok(ExitCode::SUCCESS)
}

fn cmd_catalogue() -> Result<ExitCode, String> {
    println!(
        "{:<28} {:<28} {:<18} description",
        "id", "static", "dynamic"
    );
    for c in error_catalogue() {
        let stat = match c.expect_static {
            parcoach_workloads::ExpectStatic::Clean => "clean".to_string(),
            parcoach_workloads::ExpectStatic::Warns(w) => format!("warns({w})"),
        };
        println!(
            "{:<28} {:<28} {:<18} {}",
            c.id,
            stat,
            format!("{:?}", c.expect_dynamic),
            c.description
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `--jobs`/`--deterministic` accumulated per subcommand, applied to the
/// process-wide pool before any analysis runs.
#[derive(Default)]
struct PoolFlags {
    jobs: Option<usize>,
    deterministic: bool,
}

impl PoolFlags {
    fn apply(&self) {
        if self.jobs.is_none() && !self.deterministic {
            return; // leave env/default configuration untouched
        }
        let mut cfg = parcoach_pool::PoolConfig::from_env();
        if let Some(j) = self.jobs {
            cfg.jobs = j;
        }
        if self.deterministic {
            cfg.deterministic = true;
        }
        // The CLI configures before the first analysis, so this cannot
        // race first-use; ignore the (unreachable) late-config error.
        let _ = parcoach_pool::configure(cfg);
    }
}

/// Parse a numeric flag value that must be at least 1. Anything else —
/// missing, non-numeric, or zero — is a usage error: the message plus
/// the usage text goes to stderr and the process exits 3.
fn parse_num(v: Option<&String>, flag: &str) -> Result<usize, String> {
    let raw = v.ok_or_else(|| usage_error(format!("{flag}: missing value")))?;
    match raw.parse::<usize>() {
        Ok(0) => Err(usage_error(format!(
            "{flag}: value must be at least 1, got `{raw}`"
        ))),
        Ok(n) => Ok(n),
        Err(e) => Err(usage_error(format!("{flag}: invalid value `{raw}`: {e}"))),
    }
}

fn usage_error(msg: String) -> String {
    format!("{msg}\n{USAGE}")
}
