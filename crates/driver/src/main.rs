//! `parcoachc` — command-line driver.
//!
//! One-shot mode of the same machinery `parcoachd` serves resident: the
//! analysis subcommands compile through [`parcoach_server::Document`]
//! and analyze through a [`parcoach_core::AnalysisSession`], so batch
//! and daemon answers cannot drift. The subcommands mirror the RPC
//! verbs:
//!
//! ```text
//! parcoachc check       <file.mh> [--no-refine] [--context seq|psingle|parallel]
//!                                 [--jobs N] [--deterministic] [--timings]
//! parcoachc diagnostics <file.mh>   # same findings, one line of JSON
//! parcoachc run         <file.mh> [--ranks N] [--threads T] [--no-instrument]
//!                                 [--jobs N] [--deterministic]
//! parcoachc dump        <file.mh> [function] [--dot]
//! parcoachc workload <name> <class>      # print a generated benchmark
//! parcoachc catalogue                    # list the error catalogue
//! ```
//!
//! `--jobs N` sizes the analysis pool (default: the machine's
//! parallelism, or `PARCOACH_JOBS`); `--deterministic` makes pool
//! scheduling reproducible. Reports are byte-identical for any `--jobs`
//! either way. `--timings` (or `PARCOACH_TIMINGS=1`) prints the
//! per-phase wall-time breakdown of the static analysis to stderr.
//!
//! Exit codes (see [`cli::Exit`]): 0 = clean, 1 = static warnings only,
//! 2 = dynamic error detected, 3 = usage/compile error. Bad flag values
//! (`--jobs 0`, `--ranks x`) are usage errors: a diagnostic plus the
//! usage text on stderr, exit 3.

mod cli;

use cli::{parse_num, Exit, SessionFlags, USAGE};
use parcoach_core::{instrument_module, InstrumentMode};
use parcoach_interp::{Executor, RunConfig};
use parcoach_server::{warnings_json, DocError, Document};
use parcoach_workloads::{error_catalogue, figure1_suite, WorkloadClass};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code.into(),
        Err(msg) => {
            eprintln!("parcoachc: {msg}");
            Exit::Usage.into()
        }
    }
}

fn run(args: &[String]) -> Result<Exit, String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "check" => cmd_check(&args[1..], Output::Human),
        "diagnostics" => cmd_check(&args[1..], Output::Json),
        "run" => cmd_run(&args[1..]),
        "dump" => cmd_dump(&args[1..]),
        // Former spellings, kept as aliases of `dump`.
        "dump-cfg" => cmd_dump_as(&args[1..], true),
        "dump-ir" => cmd_dump_as(&args[1..], false),
        "workload" => cmd_workload(&args[1..]),
        "catalogue" => cmd_catalogue(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(Exit::Clean)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Open a document the way the daemon does; compile failures render as
/// usage errors (exit 3).
fn load(path: &str) -> Result<Document, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Document::open(path, &src).map_err(|e| match e {
        DocError::Compile { rendered } => rendered,
        DocError::UnknownFunction(f) => format!("no function `{f}`"), // unreachable for open
    })
}

/// `check` and `diagnostics` differ only in how findings leave the
/// process: rendered diagnostics vs the daemon's JSON payload.
enum Output {
    Human,
    Json,
}

fn cmd_check(args: &[String], output: Output) -> Result<Exit, String> {
    let path = args.first().ok_or("check: missing file")?;
    let mut flags = SessionFlags::default();
    let mut timings = std::env::var("PARCOACH_TIMINGS").is_ok_and(|v| v == "1");
    let mut i = 1;
    while i < args.len() {
        if flags.eat(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--timings" => timings = true,
            other => return Err(format!("check: unknown flag `{other}`")),
        }
        i += 1;
    }
    let doc = load(path)?;
    let mut session = flags.session();
    let report = session.check_module(doc.module());
    if timings {
        let t = session.timings().expect("check records timings");
        eprintln!("--- static phase timings ---");
        for (phase, dur) in t.lines() {
            eprintln!("{phase:<12} {:>10.3} ms", dur.as_secs_f64() * 1e3);
        }
    }
    match output {
        Output::Human => {
            println!("{}", report.render(doc.source_map()));
            if report.is_clean() {
                println!("verified statically: no instrumentation needed");
            }
        }
        Output::Json => {
            use parcoach_server::json::{obj, Value};
            println!(
                "{}",
                obj([
                    ("clean", Value::from(report.is_clean())),
                    ("warnings", warnings_json(&report)),
                ])
                .to_line()
            );
        }
    }
    Ok(if report.is_clean() {
        Exit::Clean
    } else {
        Exit::StaticWarnings
    })
}

fn cmd_run(args: &[String]) -> Result<Exit, String> {
    let path = args.first().ok_or("run: missing file")?;
    let mut cfg = RunConfig::default();
    let mut instrument = true;
    let mut mode = InstrumentMode::Selective;
    let mut flags = SessionFlags::default();
    let mut i = 1;
    while i < args.len() {
        if flags.eat(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--ranks" => {
                i += 1;
                cfg.ranks = parse_num(args.get(i), "--ranks")?;
            }
            "--threads" => {
                i += 1;
                cfg.default_threads = parse_num(args.get(i), "--threads")?;
            }
            "--no-instrument" => instrument = false,
            "--full" => mode = InstrumentMode::Full,
            other => return Err(format!("run: unknown flag `{other}`")),
        }
        i += 1;
    }
    let doc = load(path)?;
    let mut session = flags.session();
    let report = session.check_module(doc.module());
    if !report.is_clean() {
        println!("--- static warnings ---");
        println!("{}", report.render(doc.source_map()));
        println!();
    }
    let module = if instrument {
        let (m, stats) = instrument_module(doc.module(), &report, mode);
        println!(
            "instrumentation: {} CC, {} return-CC, {} monothread assert(s), {} concurrency site(s), {} p2p epoch(s)",
            stats.cc_collective,
            stats.cc_return,
            stats.monothread_asserts,
            stats.concurrency_sites,
            stats.p2p_epochs
        );
        m
    } else {
        doc.module().clone()
    };
    let run = Executor::new(module, cfg).run();
    for line in &run.output {
        println!("{line}");
    }
    if run.is_clean() {
        println!("--- run completed cleanly ---");
        Ok(Exit::Clean)
    } else {
        println!("--- run failed ---");
        for e in &run.errors {
            let line = doc.source_map().line_of(e.span);
            println!("{path}:{line}: {e} [{}]", e.kind.code());
        }
        if run.detected_by_check() {
            println!("(intercepted by a PARCOACH dynamic check)");
        }
        Ok(Exit::DynamicError)
    }
}

fn cmd_dump(args: &[String]) -> Result<Exit, String> {
    let mut path = None;
    let mut which = None;
    let mut dot = false;
    for a in args {
        match a.as_str() {
            "--dot" => dot = true,
            other if path.is_none() => path = Some(other.to_string()),
            other if which.is_none() => which = Some(other.to_string()),
            other => return Err(format!("dump: unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("dump: missing file")?;
    dump(&path, which.as_deref(), dot)
}

/// The `dump-cfg` / `dump-ir` aliases (fixed format, same positional
/// arguments as before the rename).
fn cmd_dump_as(args: &[String], dot: bool) -> Result<Exit, String> {
    let path = args.first().ok_or("dump: missing file")?;
    dump(path, args.get(1).map(String::as_str), dot)
}

fn dump(path: &str, which: Option<&str>, dot: bool) -> Result<Exit, String> {
    let doc = load(path)?;
    for f in &doc.module().funcs {
        if let Some(name) = which {
            if f.name != name {
                continue;
            }
        }
        if dot {
            println!("{}", parcoach_ir::dot::func_to_dot(f));
        } else {
            println!("{}", f.dump());
        }
    }
    Ok(Exit::Clean)
}

fn cmd_workload(args: &[String]) -> Result<Exit, String> {
    let name = args.first().ok_or("workload: missing name")?;
    let class = match args.get(1).map(String::as_str) {
        Some("A") | None => WorkloadClass::A,
        Some("B") => WorkloadClass::B,
        Some("C") => WorkloadClass::C,
        other => return Err(format!("workload: bad class {other:?}")),
    };
    let suite = figure1_suite(class);
    let w = suite
        .iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("unknown workload `{name}` (try BT-MZ, SP-MZ, LU-MZ, EPCC, HERA)")
        })?;
    print!("{}", w.source);
    Ok(Exit::Clean)
}

fn cmd_catalogue() -> Result<Exit, String> {
    println!(
        "{:<28} {:<28} {:<18} description",
        "id", "static", "dynamic"
    );
    for c in error_catalogue() {
        let stat = match c.expect_static {
            parcoach_workloads::ExpectStatic::Clean => "clean".to_string(),
            parcoach_workloads::ExpectStatic::Warns(w) => format!("warns({w})"),
        };
        println!(
            "{:<28} {:<28} {:<18} {}",
            c.id,
            stat,
            format!("{:?}", c.expect_dynamic),
            c.description
        );
    }
    Ok(Exit::Clean)
}
