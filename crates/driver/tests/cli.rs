//! Integration tests for the `parcoachc` CLI: drives the real binary
//! (via `CARGO_BIN_EXE_parcoachc`) over sample `.mh` programs and
//! asserts the documented exit-code contract:
//!
//! * 0 — clean (statically verified, or run completed cleanly)
//! * 1 — static warnings only
//! * 2 — dynamic error detected
//! * 3 — usage or compile error

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

fn parcoachc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_parcoachc"))
        .args(args)
        .output()
        .expect("spawn parcoachc")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Write a program to a temp `.mh` file unique to this test.
fn write_mh(name: &str, src: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("parcoachc-cli-{}-{name}.mh", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp .mh");
    f.write_all(src.as_bytes()).expect("write temp .mh");
    path
}

const CLEAN: &str = r#"
fn main() {
    MPI_Init();
    MPI_Barrier();
    print(rank());
    MPI_Finalize();
}
"#;

const DIVERGENT: &str = r#"
fn main() {
    MPI_Init();
    if (rank() == 0) {
        MPI_Barrier();
    }
    MPI_Finalize();
}
"#;

/// The catalogue's `missing-collective` shape: the divergence reaches the
/// end of `main`, so the instrumented return-CC votes and the PARCOACH
/// check itself (not the substrate) reports the mismatch.
const DIVERGENT_AT_RETURN: &str = r#"
fn main() {
    if (rank() == 0) { MPI_Barrier(); }
}
"#;

/// Statically a false positive, dynamically clean: the condition is
/// rank-uniform, so every process takes the same branch.
const UNIFORM_CONDITIONAL: &str = r#"
fn main() {
    MPI_Init();
    if (size() > 0) {
        MPI_Barrier();
    }
    MPI_Finalize();
}
"#;

#[test]
fn check_clean_program_exits_0() {
    let p = write_mh("check-clean", CLEAN);
    let out = parcoachc(&["check", p.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("verified statically"));
}

#[test]
fn check_divergent_program_exits_1_with_warning() {
    let p = write_mh("check-div", DIVERGENT);
    let out = parcoachc(&["check", p.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("collective-mismatch"),
        "expected a collective-mismatch warning, got: {}",
        stdout(&out)
    );
}

#[test]
fn run_clean_program_exits_0() {
    let p = write_mh("run-clean", CLEAN);
    let out = parcoachc(&["run", p.to_str().unwrap(), "--ranks", "2"]);
    assert_eq!(exit_code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("run completed cleanly"));
}

#[test]
fn run_divergent_program_exits_2() {
    // With MPI_Finalize after the divergence, rank 1 reaches Finalize
    // while rank 0 sits in the barrier's CC: the simulated MPI substrate
    // flags the collective mismatch. Exit code 2 either way.
    let p = write_mh("run-div", DIVERGENT);
    let out = parcoachc(&["run", p.to_str().unwrap(), "--ranks", "2"]);
    assert_eq!(exit_code(&out), 2, "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("run failed"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn run_divergence_at_return_is_caught_by_check() {
    let p = write_mh("run-div-ret", DIVERGENT_AT_RETURN);
    let out = parcoachc(&["run", p.to_str().unwrap(), "--ranks", "2"]);
    assert_eq!(exit_code(&out), 2, "stdout: {}", stdout(&out));
    let s = stdout(&out);
    assert!(
        s.contains("intercepted by a PARCOACH dynamic check"),
        "the return-CC vote should catch the mismatch before the substrate \
         deadlocks; stdout: {s}"
    );
}

#[test]
fn run_static_false_positive_is_dynamically_clean() {
    let p = write_mh("run-fp", UNIFORM_CONDITIONAL);
    let check = parcoachc(&["check", p.to_str().unwrap()]);
    assert_eq!(
        exit_code(&check),
        1,
        "static pass should warn (conservative)"
    );
    let run = parcoachc(&["run", p.to_str().unwrap(), "--ranks", "2"]);
    assert_eq!(
        exit_code(&run),
        0,
        "uniform conditional must run cleanly: {}",
        stdout(&run)
    );
}

#[test]
fn run_uninstrumented_still_reports_dynamic_error() {
    let p = write_mh("run-noinstr", DIVERGENT);
    let out = parcoachc(&[
        "run",
        p.to_str().unwrap(),
        "--ranks",
        "2",
        "--no-instrument",
    ]);
    // Without instrumentation the mismatch is caught by the simulated MPI
    // substrate's deadlock census instead of a PARCOACH check — still
    // exit code 2, but not "intercepted".
    assert_eq!(exit_code(&out), 2, "stdout: {}", stdout(&out));
    assert!(!stdout(&out).contains("intercepted by a PARCOACH dynamic check"));
}

#[test]
fn bad_numeric_flag_values_are_usage_errors() {
    // `--jobs 0`-style values used to be silently accepted or silently
    // ignored; they must exit 3 with a diagnostic on stderr.
    let p = write_mh("bad-numeric", CLEAN);
    let file = p.to_str().unwrap();
    for args in [
        ["check", file, "--jobs", "0"],
        ["check", file, "--jobs", "zero"],
        ["run", file, "--jobs", "0"],
        ["run", file, "--ranks", "0"],
        ["run", file, "--threads", "0"],
        ["run", file, "--ranks", "-1"],
    ] {
        let out = parcoachc(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            err.contains(args[2]),
            "diagnostic should name the flag for {args:?}: {err}"
        );
        assert!(
            err.contains("USAGE"),
            "bad values route through the usage path for {args:?}: {err}"
        );
    }
}

#[test]
fn missing_numeric_flag_value_is_usage_error() {
    let p = write_mh("missing-numeric", CLEAN);
    let out = parcoachc(&["run", p.to_str().unwrap(), "--ranks"]);
    assert_eq!(exit_code(&out), 3);
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("--ranks") && err.contains("missing value"),
        "{err}"
    );
}

#[test]
fn jobs_and_deterministic_flags_accepted() {
    let p = write_mh("jobs-flags", CLEAN);
    let file = p.to_str().unwrap();
    let out = parcoachc(&["check", file, "--jobs", "2", "--deterministic"]);
    assert_eq!(exit_code(&out), 0, "stdout: {}", stdout(&out));
    let out = parcoachc(&["run", file, "--ranks", "2", "--jobs", "1"]);
    assert_eq!(exit_code(&out), 0, "stdout: {}", stdout(&out));
}

#[test]
fn check_timings_prints_phase_breakdown() {
    let p = write_mh("timings", DIVERGENT);
    let file = p.to_str().unwrap();
    // Flag form: breakdown on stderr, report on stdout, exit unchanged.
    let out = parcoachc(&["check", file, "--timings"]);
    assert_eq!(exit_code(&out), 1, "stdout: {}", stdout(&out));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    for phase in [
        "static phase timings",
        "contexts",
        "facts",
        "mono",
        "concurrency",
        "matching",
        "p2p",
        "requests",
        "total",
    ] {
        assert!(err.contains(phase), "missing `{phase}` in: {err}");
    }
    // The timed path must not change the report itself.
    let plain = parcoachc(&["check", file]);
    assert_eq!(stdout(&out), stdout(&plain));
    // Env form.
    let out = Command::new(env!("CARGO_BIN_EXE_parcoachc"))
        .args(["check", file])
        .env("PARCOACH_TIMINGS", "1")
        .output()
        .expect("spawn parcoachc");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("static phase timings"), "{err}");
}

#[test]
fn check_reports_identical_across_jobs() {
    // The analysis fans out over the pool; the rendered report must be
    // byte-identical whatever the width.
    let p = write_mh("jobs-identical", DIVERGENT);
    let file = p.to_str().unwrap();
    let seq = parcoachc(&["check", file, "--jobs", "1"]);
    let par = parcoachc(&["check", file, "--jobs", "4", "--deterministic"]);
    assert_eq!(exit_code(&seq), exit_code(&par));
    assert_eq!(stdout(&seq), stdout(&par));
}

#[test]
fn catalogue_lists_the_error_catalogue() {
    let out = parcoachc(&["catalogue"]);
    assert_eq!(exit_code(&out), 0);
    let s = stdout(&out);
    for id in [
        "mismatch-rank-branch",
        "multithreaded-collective",
        "barrier-divergence",
        "ok-single",
        "fp-uniform-conditional",
    ] {
        assert!(s.contains(id), "catalogue missing `{id}`:\n{s}");
    }
}

#[test]
fn workload_prints_compilable_source() {
    let out = parcoachc(&["workload", "EPCC", "A"]);
    assert_eq!(exit_code(&out), 0);
    let src = stdout(&out);
    assert!(src.contains("fn main()"), "not a program:\n{src}");
    // The printed workload must itself pass `check`-level compilation.
    let p = write_mh("workload-epcc", &src);
    let check = parcoachc(&["check", p.to_str().unwrap()]);
    assert!(
        exit_code(&check) <= 1,
        "generated workload failed to compile: {}",
        String::from_utf8_lossy(&check.stderr)
    );
}

#[test]
fn usage_errors_exit_3() {
    for args in [
        &["frobnicate"][..],
        &["check"][..],
        &["check", "/nonexistent/path/x.mh"][..],
        &["workload", "NO-SUCH-WORKLOAD"][..],
        &["run", "/nonexistent/path/x.mh"][..],
    ] {
        let out = parcoachc(args);
        assert_eq!(exit_code(&out), 3, "args {args:?} should be a usage error");
    }
}

#[test]
fn compile_error_exits_3() {
    let p = write_mh("syntax-err", "fn main( {");
    let out = parcoachc(&["check", p.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3);
}
