//! The global liveness census, shared by the legacy single-lock world
//! and the sharded world so both modes reach byte-identical verdicts.
//!
//! The census proves a deadlock instead of waiting out the operation
//! timeout. It fires when nothing can progress:
//!
//! * under `MPI_THREAD_SINGLE`/`FUNNELED`/`SERIALIZED` (or once some
//!   rank terminated), every rank is blocked or finished — a rank's
//!   single MPI slot is its whole liveness;
//! * under pure `MPI_THREAD_MULTIPLE`, a blocked rank may still be
//!   rescued by *another thread* of the same rank (e.g. a self-send),
//!   which a per-rank activity slot cannot observe. The embedder
//!   (the interpreter) registers thread liveness via
//!   `thread_started`/`thread_departed`; rescue is ruled out exactly
//!   when every live thread of every unfinished rank is parked in a
//!   blocking MPI wait (`blocked == live`). Unregistered worlds
//!   (`live == 0`) keep the pure timeout fallback.
//!
//! In both regimes the verdict additionally requires that nothing is
//! completable: no collective instance holds computed-but-uncollected
//! results, and no parked receive/wait has a matching buffered message.

use crate::error::{MpiError, RankActivity};
use parcoach_front::ast::ThreadLevel;

/// A consistent snapshot of the census-relevant state. The legacy world
/// borrows it straight from its single `WorldState`; the sharded world
/// assembles it while holding the world lock plus every matching-space
/// and mailbox-shard lock (in canonical order).
pub(crate) struct CensusInput<'a> {
    /// Declared thread level (None before `MPI_Init`).
    pub provided: Option<ThreadLevel>,
    /// Per-rank single-slot activity (the reported states).
    pub activity: &'a [RankActivity],
    /// Registered live interpreter threads per rank.
    pub live: &'a [usize],
    /// One pattern per thread parked in a blocking MPI wait, per rank.
    pub blocked: &'a [Vec<RankActivity>],
    /// Any collective instance with computed-but-uncollected results
    /// (its waiters will wake and make progress).
    pub any_uncollected: bool,
}

/// Evaluate the census. `has_buffered(rank, comm, src, tag)` answers
/// "does a buffered message match this parked receive pattern";
/// `member_global(comm, local)` resolves a communicator-local rank to
/// its global rank (None for stale handles).
pub(crate) fn deadlock_census(
    input: &CensusInput<'_>,
    has_buffered: &dyn Fn(usize, usize, Option<usize>, Option<i64>) -> bool,
    member_global: &dyn Fn(usize, usize) -> Option<usize>,
) -> Option<MpiError> {
    let provided = input.provided.unwrap_or(ThreadLevel::Multiple);
    let any_finished = input
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Finished));
    let threaded = provided == ThreadLevel::Multiple && !any_finished;
    if threaded {
        // The single-slot activity can be stale under MULTIPLE (a
        // sibling's completion overwrote it with Running); the
        // live/blocked counts are exact, so they gate instead.
        for (rank, a) in input.activity.iter().enumerate() {
            if matches!(a, RankActivity::Finished) {
                continue;
            }
            if input.live[rank] == 0 || input.blocked[rank].len() != input.live[rank] {
                return None; // cannot rule out rescue by another thread
            }
        }
    } else if input
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Running))
    {
        // Any rank still running may still make progress.
        return None;
    }
    if input.any_uncollected {
        return None;
    }
    // A recv/wait whose message is already buffered will complete. In
    // threaded mode check every parked pattern, not just the
    // single-slot activity view.
    for (rank, act) in input.activity.iter().enumerate() {
        let (comm, src, tag) = match act {
            RankActivity::InRecv { comm, src, tag }
            | RankActivity::InWait { comm, src, tag, .. } => (*comm, *src, *tag),
            _ => continue,
        };
        if has_buffered(rank, comm, src, tag) {
            return None;
        }
    }
    if threaded {
        for (rank, ops) in input.blocked.iter().enumerate() {
            for act in ops {
                let (comm, src, tag) = match act {
                    RankActivity::InRecv { comm, src, tag }
                    | RankActivity::InWait { comm, src, tag, .. } => (*comm, *src, *tag),
                    _ => continue,
                };
                if has_buffered(rank, comm, src, tag) {
                    return None;
                }
            }
        }
    }
    // All blocked/finished and nothing completable.
    if input
        .activity
        .iter()
        .all(|a| matches!(a, RankActivity::Finished))
    {
        return None; // clean exit
    }
    // Genuine deadlock. In threaded mode derive accurate per-rank
    // states from the parked patterns (activity may claim Running).
    let states: Vec<RankActivity> = if threaded {
        input
            .activity
            .iter()
            .enumerate()
            .map(|(r, a)| match a {
                RankActivity::Finished => a.clone(),
                _ => input.blocked[r]
                    .first()
                    .cloned()
                    .unwrap_or_else(|| a.clone()),
            })
            .collect()
    } else {
        input.activity.to_vec()
    };
    // Before reporting the generic form, build the wait-for graph over
    // the blocked receives/waits: an edge rank → r exists when rank
    // awaits a message only r could send (pinned source; nothing
    // matching buffered — checked above). A cycle names the ranks that
    // starve each other, the precise report a hung `MPI_Wait` chain
    // deserves.
    if let Some(cycle) = wait_for_cycle(&states, member_global) {
        return Some(MpiError::WaitCycle { cycle, states });
    }
    Some(MpiError::Deadlock { states })
}

/// Find a cycle in the wait-for graph of blocked pinned-source
/// receives/waits, as global ranks in wait-for order.
fn wait_for_cycle(
    states: &[RankActivity],
    member_global: &dyn Fn(usize, usize) -> Option<usize>,
) -> Option<Vec<usize>> {
    let n = states.len();
    let mut edge: Vec<Option<usize>> = vec![None; n];
    for (rank, act) in states.iter().enumerate() {
        let (comm, src) = match act {
            RankActivity::InRecv {
                comm, src: Some(s), ..
            }
            | RankActivity::InWait {
                comm, src: Some(s), ..
            } => (*comm, *s),
            _ => continue,
        };
        let Some(awaited_global) = member_global(comm, src) else {
            continue;
        };
        edge[rank] = Some(awaited_global);
    }
    for start in 0..n {
        let mut cur = start;
        let mut path = Vec::new();
        let mut on_path = vec![false; n];
        while let Some(next) = edge[cur] {
            if on_path[cur] {
                break; // cycle not through `start`; a later start finds it
            }
            on_path[cur] = true;
            path.push(cur);
            cur = next;
            if cur == start {
                return Some(path);
            }
        }
    }
    None
}
