//! The legacy single-lock matching engine: one `Mutex<WorldState>` and
//! one `Condvar` serialize every rank, communicator, mailbox, request
//! and census operation. Preserved verbatim behind
//! `MpiConfig::legacy_world_lock` as the ablation baseline and fuzz
//! cross-check for the sharded engine (`sharded.rs`); both must produce
//! byte-identical reports.

use crate::census::{deadlock_census, CensusInput};
use crate::error::{MpiError, RankActivity};
use crate::signature::{CollectiveOp, Signature};
use crate::value::MpiValue;
use crate::world::{
    bad_comm, comm_suffix, compute_results, decode_recv_key, matching_message, not_member,
    value_or_any, Instance, Message, MpiConfig, Request, RequestState,
};
use parcoach_front::ast::ThreadLevel;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Instant;

/// Per-communicator matching state.
struct CommState {
    /// Global ranks, ordered; the position is the comm-local rank.
    members: Vec<usize>,
    instances: VecDeque<Instance>,
    base_seq: u64,
    per_rank_seq: Vec<u64>,
    /// Messages sent on this communicator, per local sender.
    p2p_sent: Vec<u64>,
    /// Messages received on this communicator, per local receiver.
    p2p_recvd: Vec<u64>,
}

impl CommState {
    fn new(members: Vec<usize>) -> CommState {
        let n = members.len();
        CommState {
            members,
            instances: VecDeque::new(),
            base_seq: 0,
            per_rank_seq: vec![0; n],
            p2p_sent: vec![0; n],
            p2p_recvd: vec![0; n],
        }
    }

    fn local_rank(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&g| g == global)
    }
}

struct WorldState {
    comms: Vec<CommState>,
    activity: Vec<RankActivity>,
    mailboxes: Vec<Vec<Message>>,
    /// All non-blocking requests ever posted; handles index this table.
    requests: Vec<Request>,
    abort: Option<MpiError>,
    provided: Option<ThreadLevel>,
    /// Number of MPI calls currently in flight per rank (threads).
    in_flight: Vec<usize>,
    /// Interpreter threads currently able to issue MPI calls, per rank
    /// (registered via `thread_started`/`thread_departed`). Zero when
    /// the embedder does not register — the liveness census then falls
    /// back to the pure timeout under `MPI_THREAD_MULTIPLE`.
    live: Vec<usize>,
    /// One entry per thread parked in a blocking MPI wait, per rank:
    /// the pattern it is blocked on. Together with `live` this lets the
    /// census rule out rescue-by-sibling-thread under
    /// `MPI_THREAD_MULTIPLE`: when every live thread of every
    /// unfinished rank is parked, nothing can progress.
    blocked: Vec<Vec<RankActivity>>,
}

/// The legacy single-lock world engine.
pub(crate) struct LegacyWorld {
    cfg: MpiConfig,
    state: Mutex<WorldState>,
    cv: Condvar,
}

impl LegacyWorld {
    pub(crate) fn new(cfg: MpiConfig) -> LegacyWorld {
        let size = cfg.world_size;
        LegacyWorld {
            state: Mutex::new(WorldState {
                comms: vec![CommState::new((0..size).collect())],
                activity: vec![RankActivity::Running; size],
                mailboxes: vec![Vec::new(); size],
                requests: Vec::new(),
                abort: None,
                provided: None,
                in_flight: vec![0; size],
                live: vec![0; size],
                blocked: vec![Vec::new(); size],
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    pub(crate) fn comm_size(&self, comm: usize) -> Option<usize> {
        self.state.lock().comms.get(comm).map(|c| c.members.len())
    }

    pub(crate) fn comm_rank(&self, comm: usize, global: usize) -> Option<usize> {
        self.state
            .lock()
            .comms
            .get(comm)
            .and_then(|c| c.local_rank(global))
    }

    pub(crate) fn init(&self, _rank: usize, required: ThreadLevel) -> ThreadLevel {
        let provided = required.min(self.cfg.max_provided);
        let mut st = self.state.lock();
        // First init fixes the level; later inits (other ranks) keep the
        // weakest requested so enforcement is uniform.
        st.provided = Some(match st.provided {
            None => provided,
            Some(cur) => cur.min(provided),
        });
        provided
    }

    pub(crate) fn provided(&self) -> ThreadLevel {
        self.state.lock().provided.unwrap_or(ThreadLevel::Multiple)
    }

    pub(crate) fn abort(&self, reason: MpiError) {
        let mut st = self.state.lock();
        if st.abort.is_none() {
            st.abort = Some(reason);
        }
        self.cv.notify_all();
    }

    pub(crate) fn abort_reason(&self) -> Option<MpiError> {
        self.state.lock().abort.clone()
    }

    /// Guard every MPI entry: enforces the provided thread level.
    ///
    /// `is_initial_thread` = the calling thread is the process's initial
    /// thread (master of every enclosing team).
    fn enter_mpi(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let provided = st.provided.unwrap_or(ThreadLevel::Multiple);
        let concurrent = st.in_flight[rank] > 0;
        if let Some(detail) =
            crate::world::thread_level_violation(provided, concurrent, is_initial_thread)
        {
            let err = MpiError::ThreadLevelViolation { provided, detail };
            if st.abort.is_none() {
                st.abort = Some(err.clone());
            }
            self.cv.notify_all();
            return Err(err);
        }
        st.in_flight[rank] += 1;
        Ok(())
    }

    fn leave_mpi(&self, rank: usize) {
        let mut st = self.state.lock();
        st.in_flight[rank] = st.in_flight[rank].saturating_sub(1);
    }

    pub(crate) fn thread_started(&self, rank: usize) {
        let mut st = self.state.lock();
        st.live[rank] += 1;
    }

    pub(crate) fn thread_departed(&self, rank: usize) {
        let mut st = self.state.lock();
        st.live[rank] = st.live[rank].saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    pub(crate) fn finish_rank(&self, rank: usize) {
        let mut st = self.state.lock();
        st.activity[rank] = RankActivity::Finished;
        st.live[rank] = st.live[rank].saturating_sub(1);
        if st.abort.is_none() {
            let pending_collective = st
                .comms
                .iter()
                .flat_map(|c| c.instances.iter())
                .any(|i| i.results.is_none() && i.arrived_count > 0);
            let all_settled = st
                .activity
                .iter()
                .all(|a| !matches!(a, RankActivity::Running));
            if pending_collective && all_settled {
                st.abort = Some(MpiError::RankFinishedEarly {
                    finished_rank: rank,
                    states: st.activity.clone(),
                });
            } else if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl);
            }
        }
        self.cv.notify_all();
    }

    pub(crate) fn send_on(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = {
            let mut st = self.state.lock();
            deliver(&mut st, rank, comm, dest, tag, value)
        };
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.cv.notify_all();
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn isend(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result: Result<usize, MpiError> = (|| {
            let mut st = self.state.lock();
            deliver(&mut st, rank, comm, dest, tag, value)?;
            st.requests.push(Request {
                owner: rank,
                state: RequestState::SendDone,
            });
            Ok(st.requests.len() - 1)
        })();
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.cv.notify_all();
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn irecv(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = (|| {
            let (s, t) = decode_recv_key(src, tag)?;
            let mut st = self.state.lock();
            let Some(c) = st.comms.get(comm) else {
                return Err(bad_comm(comm));
            };
            if c.local_rank(rank).is_none() {
                return Err(not_member(rank, comm));
            }
            if let Some(s) = s {
                if s >= c.members.len() {
                    return Err(MpiError::ArgError(format!(
                        "irecv source {s} out of range for communicator size {}",
                        c.members.len()
                    )));
                }
            }
            st.requests.push(Request {
                owner: rank,
                state: RequestState::RecvPending {
                    comm,
                    src: s,
                    tag: t,
                },
            });
            Ok(st.requests.len() - 1)
        })();
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn wait(
        &self,
        rank: usize,
        request: usize,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.wait_inner(rank, request);
        self.leave_mpi(rank);
        result
    }

    fn wait_inner(&self, rank: usize, request: usize) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        let req = match st.requests.get(request).cloned() {
            Some(r) => r,
            None => {
                let err = MpiError::ArgError(format!("invalid request handle #{request}"));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        };
        if req.owner != rank {
            let err = MpiError::ArgError(format!(
                "rank {rank} cannot wait on request #{request} posted by rank {}",
                req.owner
            ));
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        }
        let (comm, src, tag) = match req.state {
            RequestState::SendDone => {
                st.requests[request].state = RequestState::Retired;
                return Ok(MpiValue::Int(0));
            }
            RequestState::Retired => {
                let err = MpiError::ArgError(format!(
                    "request #{request} was already completed by a previous wait"
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
            RequestState::RecvPending { comm, src, tag } => (comm, src, tag),
        };
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            // Re-read the state every round: under MPI_THREAD_MULTIPLE a
            // sibling thread waiting on the same request may have
            // completed it while we slept — that is a double wait and
            // must error, not steal the next matching message.
            if matches!(st.requests[request].state, RequestState::Retired) {
                let err = MpiError::ArgError(format!(
                    "request #{request} was already completed by a previous wait"
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
            if let Some(pos) = matching_message(&st.mailboxes[rank], comm, src, tag) {
                let msg = st.mailboxes[rank].remove(pos);
                let my_local = st.comms[comm]
                    .local_rank(rank)
                    .expect("membership checked at post time");
                st.comms[comm].p2p_recvd[my_local] += 1;
                st.requests[request].state = RequestState::Retired;
                st.activity[rank] = RankActivity::Running;
                return Ok(msg.value);
            }
            let act = RankActivity::InWait {
                request,
                comm,
                src,
                tag,
            };
            st.activity[rank] = act.clone();
            st.blocked[rank].push(act.clone());
            if let Some(dl) = deadlock(&st) {
                unpark(&mut st, rank, &act);
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            unpark(&mut st, rank, &act);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "MPI_Wait(req #{request}){} on rank {rank}",
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }

    pub(crate) fn recv_on(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.recv_inner(rank, comm, src, tag);
        self.leave_mpi(rank);
        result
    }

    fn recv_inner(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        let (src, tag) = match decode_recv_key(src, tag) {
            Ok(k) => k,
            Err(err) => {
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        };
        let Some(c) = st.comms.get(comm) else {
            let err = bad_comm(comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let Some(my_local) = c.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        if let Some(s) = src {
            if s >= c.members.len() {
                let err = MpiError::ArgError(format!(
                    "recv source {s} out of range for communicator size {}",
                    c.members.len()
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        }
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            if let Some(pos) = matching_message(&st.mailboxes[rank], comm, src, tag) {
                let msg = st.mailboxes[rank].remove(pos);
                st.comms[comm].p2p_recvd[my_local] += 1;
                st.activity[rank] = RankActivity::Running;
                return Ok(msg.value);
            }
            let act = RankActivity::InRecv { comm, src, tag };
            st.activity[rank] = act.clone();
            st.blocked[rank].push(act.clone());
            if let Some(dl) = deadlock(&st) {
                unpark(&mut st, rank, &act);
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            unpark(&mut st, rank, &act);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "MPI_Recv(src={}, tag={}{}) on rank {rank}",
                        value_or_any(src),
                        value_or_any(tag),
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }

    fn abort_locked(&self, st: &mut WorldState, err: MpiError) {
        if st.abort.is_none() {
            st.abort = Some(err);
        }
        self.cv.notify_all();
    }

    pub(crate) fn enter_collective(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.enter_collective_inner(rank, comm, sig, payload);
        self.leave_mpi(rank);
        result
    }

    fn enter_collective_inner(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let Some(c) = st.comms.get(comm) else {
            let err = bad_comm(comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let Some(local) = c.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let size = c.members.len();
        let seq = st.comms[comm].per_rank_seq[local];
        st.comms[comm].per_rank_seq[local] += 1;
        // Materialize instances up to `seq`.
        while st.comms[comm].base_seq + (st.comms[comm].instances.len() as u64) <= seq {
            st.comms[comm].instances.push_back(Instance::new(size));
        }
        let idx = (seq - st.comms[comm].base_seq) as usize;
        let complete = {
            let inst = &mut st.comms[comm].instances[idx];
            match &inst.signature {
                None => {
                    inst.signature = Some(sig);
                    inst.first_rank = rank;
                }
                Some(existing) if *existing != sig => {
                    let err = MpiError::CollectiveMismatch {
                        comm,
                        seq,
                        expected: *existing,
                        expected_rank: inst.first_rank,
                        got: sig,
                        got_rank: rank,
                    };
                    st.abort = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
                Some(_) => {}
            }
            inst.payloads[local] = payload;
            inst.arrived_count += 1;
            inst.arrived_count == size
        };
        if complete {
            // Compute results outside the instance borrow: communicator
            // management collectives allocate new communicators.
            let payloads = st.comms[comm].instances[idx].payloads.clone();
            let results = match sig.op {
                CollectiveOp::CommSplit => split_results(&mut st, comm, &payloads),
                CollectiveOp::CommDup => Ok(dup_results(&mut st, comm)),
                CollectiveOp::P2pCensus => Ok(census_results(&mut st, size)),
                _ => compute_results(sig, &payloads, size),
            };
            match results {
                Ok(results) => {
                    st.comms[comm].instances[idx].results = Some(results);
                    self.cv.notify_all();
                }
                Err(err) => {
                    st.abort = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
            }
        }
        let act = RankActivity::InCollective {
            seq,
            what: format!("{sig}{}", comm_suffix(comm)),
        };
        st.activity[rank] = act.clone();
        // Wait for results.
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            let idx = (seq - st.comms[comm].base_seq) as usize;
            let done = {
                let inst = &mut st.comms[comm].instances[idx];
                if let Some(results) = &inst.results {
                    let out = results[local].clone();
                    inst.collected[local] = true;
                    inst.collected_count += 1;
                    Some(out)
                } else {
                    None
                }
            };
            if let Some(out) = done {
                st.activity[rank] = RankActivity::Running;
                // Drop fully-collected instances from the front.
                let cs = &mut st.comms[comm];
                while let Some(front) = cs.instances.front() {
                    if front.collected_count == cs.members.len() {
                        cs.instances.pop_front();
                        cs.base_seq += 1;
                    } else {
                        break;
                    }
                }
                return Ok(out);
            }
            st.blocked[rank].push(act.clone());
            if let Some(dl) = deadlock(&st) {
                unpark(&mut st, rank, &act);
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            unpark(&mut st, rank, &act);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "{sig}{} on rank {rank} (collective #{seq})",
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }
}

/// Deliver one buffered message — the shared core of the blocking and
/// non-blocking sends: validates the destination and tag, bumps the
/// sender's per-communicator counter and appends to the destination's
/// mailbox.
fn deliver(
    st: &mut WorldState,
    rank: usize,
    comm: usize,
    dest: usize,
    tag: i64,
    value: MpiValue,
) -> Result<(), MpiError> {
    if tag < 0 {
        return Err(MpiError::ArgError(format!(
            "send tag {tag} must be non-negative (wildcards are receive-only)"
        )));
    }
    let Some(c) = st.comms.get(comm) else {
        return Err(bad_comm(comm));
    };
    let Some(src_local) = c.local_rank(rank) else {
        return Err(not_member(rank, comm));
    };
    if dest >= c.members.len() {
        return Err(MpiError::ArgError(format!(
            "send destination {dest} out of range for communicator size {}",
            c.members.len()
        )));
    }
    let global_dest = c.members[dest];
    st.comms[comm].p2p_sent[src_local] += 1;
    st.mailboxes[global_dest].push(Message {
        comm,
        src: src_local,
        tag,
        value,
    });
    Ok(())
}

/// `MPI_Comm_split` results: group the parent's members by color,
/// order each group by (key, global rank), allocate one new
/// communicator per color (ascending), and hand every member its
/// group's handle.
fn split_results(
    st: &mut WorldState,
    parent: usize,
    payloads: &[Option<MpiValue>],
) -> Result<Vec<MpiValue>, MpiError> {
    let members = st.comms[parent].members.clone();
    let mut entries: Vec<(i64, i64, usize)> = Vec::with_capacity(members.len()); // (color, key, global)
    for (local, p) in payloads.iter().enumerate() {
        match p {
            Some(MpiValue::ArrayInt(ck)) if ck.len() == 2 => {
                entries.push((ck[0], ck[1], members[local]));
            }
            _ => {
                return Err(MpiError::ArgError(
                    "MPI_Comm_split payload must be [color, key]".into(),
                ))
            }
        }
    }
    let mut colors: Vec<i64> = entries.iter().map(|e| e.0).collect();
    colors.sort_unstable();
    colors.dedup();
    let mut handle_of_global: Vec<(usize, usize)> = Vec::new(); // (global, handle)
    for color in colors {
        let mut group: Vec<(i64, usize)> = entries
            .iter()
            .filter(|e| e.0 == color)
            .map(|e| (e.1, e.2))
            .collect();
        group.sort_unstable();
        let handle = st.comms.len();
        let group_members: Vec<usize> = group.iter().map(|&(_, g)| g).collect();
        for &g in &group_members {
            handle_of_global.push((g, handle));
        }
        st.comms.push(CommState::new(group_members));
    }
    Ok(members
        .iter()
        .map(|g| {
            let h = handle_of_global
                .iter()
                .find(|(gg, _)| gg == g)
                .expect("every member is in a group")
                .1;
            MpiValue::Int(h as i64)
        })
        .collect())
}

/// `MPI_Comm_dup` results: one new communicator with the same members.
fn dup_results(st: &mut WorldState, parent: usize) -> Vec<MpiValue> {
    let members = st.comms[parent].members.clone();
    let size = members.len();
    let handle = st.comms.len();
    st.comms.push(CommState::new(members));
    vec![MpiValue::Int(handle as i64); size]
}

/// P2p census results: snapshot the per-communicator send/receive
/// totals, then reset the counters (the epoch ends at the census).
fn census_results(st: &mut WorldState, size: usize) -> Vec<MpiValue> {
    let mut flat: Vec<i64> = Vec::with_capacity(st.comms.len() * 3);
    for (h, c) in st.comms.iter().enumerate() {
        flat.push(h as i64);
        flat.push(c.p2p_sent.iter().sum::<u64>() as i64);
        flat.push(c.p2p_recvd.iter().sum::<u64>() as i64);
    }
    for c in st.comms.iter_mut() {
        c.p2p_sent.iter_mut().for_each(|x| *x = 0);
        c.p2p_recvd.iter_mut().for_each(|x| *x = 0);
    }
    vec![MpiValue::ArrayInt(flat); size]
}

/// Remove one parked-pattern record for `rank` equal to `act` (the
/// entry this thread pushed before waiting; equal records from sibling
/// threads are interchangeable, so removing any one keeps the multiset
/// right).
fn unpark(st: &mut WorldState, rank: usize, act: &RankActivity) {
    if let Some(i) = st.blocked[rank].iter().rposition(|a| a == act) {
        st.blocked[rank].swap_remove(i);
    }
}

/// Evaluate the shared liveness census over the single-lock state.
fn deadlock(st: &WorldState) -> Option<MpiError> {
    let input = CensusInput {
        provided: st.provided,
        activity: &st.activity,
        live: &st.live,
        blocked: &st.blocked,
        any_uncollected: st
            .comms
            .iter()
            .flat_map(|c| c.instances.iter())
            .any(|i| i.results.is_some()),
    };
    deadlock_census(
        &input,
        &|rank, comm, src, tag| matching_message(&st.mailboxes[rank], comm, src, tag).is_some(),
        &|comm, local| {
            st.comms
                .get(comm)
                .and_then(|c| c.members.get(local).copied())
        },
    )
}
