//! The simulated MPI world: ranks, communicators, the collective
//! matching engine, thread-level enforcement, point-to-point messaging,
//! deadlock detection and the PARCOACH `CC` control collective.
//!
//! ## Matching model
//!
//! **Per communicator**, collectives match in per-rank program order:
//! the n-th collective call of every member of a communicator forms
//! instance `n` of that communicator. The first arriver fixes the
//! instance's [`Signature`]; any member arriving with a different
//! signature is a **collective mismatch** and aborts the world with both
//! signatures and ranks — this is what MUST's tree-based matcher
//! reports, and what the PARCOACH `CC` turns into a *pre*-collective
//! error with source lines. Collectives on different communicators have
//! disjoint matching spaces and never see each other.
//!
//! Communicators are created collectively: handle `0` is
//! `MPI_COMM_WORLD`; [`World::comm_split`] and [`World::comm_dup`]
//! allocate new handles shared by all members. Point-to-point messages
//! also carry their communicator; ranks and roots passed to
//! communicator-scoped operations are *local* ranks within that
//! communicator.
//!
//! ## Non-blocking point-to-point
//!
//! [`World::isend`] buffers its message immediately (eager protocol,
//! like the blocking [`World::send_on`]) and returns a **request**
//! handle that completes trivially at [`World::wait`]. [`World::irecv`]
//! registers a receive post — optionally wildcarded with
//! `MPI_ANY_SOURCE` / `MPI_ANY_TAG` — without blocking; the matching
//! message is consumed at the `wait`. Wildcard matching is
//! **deterministic**: among all buffered candidates the lowest sender
//! rank wins, then the earliest arrival.
//!
//! ## Deadlock detection
//!
//! A real MPI run with mismatched collective *counts* hangs. Here every
//! blocking wait participates in a liveness census: when **all** ranks
//! are blocked (collective/recv/wait) or finished and nothing can
//! complete on any communicator, the world aborts with a per-rank
//! activity dump. Before declaring a generic deadlock the census builds
//! a **wait-for graph** over the blocked receives and waits (an edge
//! rank → r when rank awaits a message only r could send); a genuine
//! cycle is reported as [`MpiError::WaitCycle`] naming the ranks on it.
//! A rank finishing while others wait in a collective aborts
//! immediately.

use crate::error::{MpiError, RankActivity};
use crate::signature::{CollectiveOp, Signature};
use crate::value::{reduce_array, reduce_scalar, MpiType, MpiValue};
use parcoach_front::ast::{ReduceOp, ThreadLevel, ANY_SOURCE, ANY_TAG};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The handle of `MPI_COMM_WORLD`.
pub const COMM_WORLD: usize = 0;

/// World configuration.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub world_size: usize,
    /// The highest thread level this "implementation" grants.
    pub max_provided: ThreadLevel,
    /// Blocking-operation timeout (deadlock fallback).
    pub op_timeout: Duration,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            world_size: 2,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_secs(10),
        }
    }
}

/// One buffered point-to-point message.
#[derive(Debug, Clone)]
struct Message {
    /// Communicator the message travels on.
    comm: usize,
    /// Sender's local rank within `comm`.
    src: usize,
    tag: i64,
    value: MpiValue,
}

/// One collective instance (the n-th collective of a communicator).
struct Instance {
    signature: Option<Signature>,
    first_rank: usize,
    payloads: Vec<Option<MpiValue>>,
    arrived_count: usize,
    results: Option<Vec<MpiValue>>,
    collected: Vec<bool>,
    collected_count: usize,
}

impl Instance {
    fn new(size: usize) -> Instance {
        Instance {
            signature: None,
            first_rank: 0,
            payloads: vec![None; size],
            arrived_count: 0,
            results: None,
            collected: vec![false; size],
            collected_count: 0,
        }
    }
}

/// Per-communicator matching state.
struct CommState {
    /// Global ranks, ordered; the position is the comm-local rank.
    members: Vec<usize>,
    instances: VecDeque<Instance>,
    base_seq: u64,
    per_rank_seq: Vec<u64>,
    /// Messages sent on this communicator, per local sender.
    p2p_sent: Vec<u64>,
    /// Messages received on this communicator, per local receiver.
    p2p_recvd: Vec<u64>,
}

impl CommState {
    fn new(members: Vec<usize>) -> CommState {
        let n = members.len();
        CommState {
            members,
            instances: VecDeque::new(),
            base_seq: 0,
            per_rank_seq: vec![0; n],
            p2p_sent: vec![0; n],
            p2p_recvd: vec![0; n],
        }
    }

    fn local_rank(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&g| g == global)
    }
}

/// State of one non-blocking request.
#[derive(Debug, Clone)]
enum RequestState {
    /// A buffered isend: complete at post time, `wait` just retires it.
    SendDone,
    /// An irecv post awaiting a matching message.
    RecvPending {
        /// Communicator the post is on.
        comm: usize,
        /// Pinned local source (None = `MPI_ANY_SOURCE`).
        src: Option<usize>,
        /// Pinned tag (None = `MPI_ANY_TAG`).
        tag: Option<i64>,
    },
    /// Completed and retired by a wait; further waits are errors.
    Retired,
}

/// One non-blocking request, owned by the rank that posted it.
#[derive(Debug, Clone)]
struct Request {
    owner: usize,
    state: RequestState,
}

struct WorldState {
    comms: Vec<CommState>,
    activity: Vec<RankActivity>,
    mailboxes: Vec<Vec<Message>>,
    /// All non-blocking requests ever posted; handles index this table.
    requests: Vec<Request>,
    abort: Option<MpiError>,
    provided: Option<ThreadLevel>,
    /// Number of MPI calls currently in flight per rank (threads).
    in_flight: Vec<usize>,
}

/// Index of the buffered message a (possibly wildcarded) receive should
/// take: lowest sender rank first, then earliest arrival — the
/// deterministic wildcard tie-break.
fn matching_message(
    mailbox: &[Message],
    comm: usize,
    src: Option<usize>,
    tag: Option<i64>,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, m) in mailbox.iter().enumerate() {
        if m.comm != comm {
            continue;
        }
        if src.is_some_and(|s| m.src != s) {
            continue;
        }
        if tag.is_some_and(|t| m.tag != t) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if m.src < mailbox[b].src => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Decode a sentinel-encoded (source, tag) receive key: `ANY_SOURCE` /
/// `ANY_TAG` become wildcards, other negative values are errors.
fn decode_recv_key(src: i64, tag: i64) -> Result<(Option<usize>, Option<i64>), MpiError> {
    let s = match src {
        ANY_SOURCE => None,
        s if s < 0 => {
            return Err(MpiError::ArgError(format!(
                "receive source {s} is neither a rank nor MPI_ANY_SOURCE"
            )))
        }
        s => Some(s as usize),
    };
    let t = match tag {
        ANY_TAG => None,
        t if t < 0 => {
            return Err(MpiError::ArgError(format!(
                "receive tag {t} is neither a tag nor MPI_ANY_TAG"
            )))
        }
        t => Some(t),
    };
    Ok((s, t))
}

/// The simulated MPI world. Shared by all rank threads via `Arc`.
pub struct World {
    cfg: MpiConfig,
    state: Mutex<WorldState>,
    cv: Condvar,
}

/// Result of the `CC` control collective: the per-(local-)rank colors.
#[derive(Debug, Clone, PartialEq)]
pub struct CcOutcome {
    /// Color communicated by each member, in local rank order.
    pub colors: Vec<u32>,
}

impl CcOutcome {
    /// True when all members communicated the same color.
    pub fn unanimous(&self) -> bool {
        self.colors.windows(2).all(|w| w[0] == w[1])
    }

    /// Minimum and maximum color (the paper's `(min, max)` all-reduce).
    pub fn min_max(&self) -> (u32, u32) {
        let min = self.colors.iter().copied().min().unwrap_or(0);
        let max = self.colors.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

/// One communicator's p2p census row: (handle, total sent, total
/// received).
pub type P2pCensusRow = (usize, u64, u64);

impl World {
    /// Create a world of `cfg.world_size` ranks.
    pub fn new(cfg: MpiConfig) -> Arc<World> {
        let size = cfg.world_size.max(1);
        Arc::new(World {
            state: Mutex::new(WorldState {
                comms: vec![CommState::new((0..size).collect())],
                activity: vec![RankActivity::Running; size],
                mailboxes: vec![Vec::new(); size],
                requests: Vec::new(),
                abort: None,
                provided: None,
                in_flight: vec![0; size],
            }),
            cv: Condvar::new(),
            cfg: MpiConfig {
                world_size: size,
                ..cfg
            },
        })
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.cfg.world_size
    }

    /// Number of members of a communicator (None for a bad handle).
    pub fn comm_size(&self, comm: usize) -> Option<usize> {
        self.state.lock().comms.get(comm).map(|c| c.members.len())
    }

    /// The local rank of `global` within `comm` (None when not a
    /// member or the handle is bad).
    pub fn comm_rank(&self, global: usize, comm: usize) -> Option<usize> {
        self.state
            .lock()
            .comms
            .get(comm)
            .and_then(|c| c.local_rank(global))
    }

    /// `MPI_Init(_thread)`: returns the provided level
    /// (`min(required, max_provided)`).
    pub fn init(&self, _rank: usize, required: ThreadLevel) -> ThreadLevel {
        let provided = required.min(self.cfg.max_provided);
        let mut st = self.state.lock();
        // First init fixes the level; later inits (other ranks) keep the
        // weakest requested so enforcement is uniform.
        st.provided = Some(match st.provided {
            None => provided,
            Some(cur) => cur.min(provided),
        });
        provided
    }

    /// The currently provided thread level (`Multiple` before init —
    /// enforcement only starts once the program declared its level).
    pub fn provided(&self) -> ThreadLevel {
        self.state.lock().provided.unwrap_or(ThreadLevel::Multiple)
    }

    /// Abort the world: all blocked and future operations fail with
    /// [`MpiError::Aborted`] carrying `reason`. The first abort wins.
    pub fn abort(&self, reason: MpiError) {
        let mut st = self.state.lock();
        if st.abort.is_none() {
            st.abort = Some(reason);
        }
        self.cv.notify_all();
    }

    /// The abort reason, if the world aborted.
    pub fn abort_reason(&self) -> Option<MpiError> {
        self.state.lock().abort.clone()
    }

    /// Guard every MPI entry: enforces the provided thread level.
    ///
    /// `is_initial_thread` = the calling thread is the process's initial
    /// thread (master of every enclosing team).
    fn enter_mpi(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let provided = st.provided.unwrap_or(ThreadLevel::Multiple);
        let concurrent = st.in_flight[rank] > 0;
        let violation = match provided {
            ThreadLevel::Multiple => None,
            ThreadLevel::Serialized => concurrent.then(|| {
                "two threads of the same process are inside MPI simultaneously".to_string()
            }),
            ThreadLevel::Funneled => {
                if !is_initial_thread {
                    Some("an MPI call was made by a thread other than the main thread".into())
                } else if concurrent {
                    Some("concurrent MPI calls under MPI_THREAD_FUNNELED".into())
                } else {
                    None
                }
            }
            ThreadLevel::Single => {
                if !is_initial_thread {
                    Some(
                        "an MPI call was made from a spawned thread under MPI_THREAD_SINGLE".into(),
                    )
                } else if concurrent {
                    Some("concurrent MPI calls under MPI_THREAD_SINGLE".into())
                } else {
                    None
                }
            }
        };
        if let Some(detail) = violation {
            let err = MpiError::ThreadLevelViolation { provided, detail };
            if st.abort.is_none() {
                st.abort = Some(err.clone());
            }
            self.cv.notify_all();
            return Err(err);
        }
        st.in_flight[rank] += 1;
        Ok(())
    }

    fn leave_mpi(&self, rank: usize) {
        let mut st = self.state.lock();
        st.in_flight[rank] = st.in_flight[rank].saturating_sub(1);
    }

    /// Mark a rank's program as terminated. Detects "finished while
    /// others wait in a collective".
    pub fn finish_rank(&self, rank: usize) {
        let mut st = self.state.lock();
        st.activity[rank] = RankActivity::Finished;
        if st.abort.is_none() {
            let pending_collective = st
                .comms
                .iter()
                .flat_map(|c| c.instances.iter())
                .any(|i| i.results.is_none() && i.arrived_count > 0);
            let all_settled = st
                .activity
                .iter()
                .all(|a| !matches!(a, RankActivity::Running));
            if pending_collective && all_settled {
                st.abort = Some(MpiError::RankFinishedEarly {
                    finished_rank: rank,
                    states: st.activity.clone(),
                });
            } else if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl);
            }
        }
        self.cv.notify_all();
    }

    /// The PARCOACH `CC` control collective on `MPI_COMM_WORLD`.
    pub fn control_cc(
        &self,
        rank: usize,
        color: u32,
        is_initial_thread: bool,
    ) -> Result<CcOutcome, MpiError> {
        self.control_cc_on(rank, COMM_WORLD, color, is_initial_thread)
    }

    /// The PARCOACH `CC` control collective on a communicator:
    /// all-reduce the color among its members and return every member's
    /// color. Running the CC on the *guarded collective's* communicator
    /// keeps unrelated communicators out of each other's checks.
    pub fn control_cc_on(
        &self,
        rank: usize,
        comm: usize,
        color: u32,
        is_initial_thread: bool,
    ) -> Result<CcOutcome, MpiError> {
        let out = self.enter_collective(
            rank,
            comm,
            Signature::control_cc(),
            Some(MpiValue::Int(color as i64)),
            is_initial_thread,
        )?;
        match out {
            MpiValue::ArrayInt(colors) => Ok(CcOutcome {
                colors: colors.into_iter().map(|c| c as u32).collect(),
            }),
            other => panic!("CC result must be an int array, got {:?}", other.ty()),
        }
    }

    /// `MPI_Finalize` — synchronizing pseudo-collective on the world.
    pub fn finalize(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        self.enter_collective(
            rank,
            COMM_WORLD,
            Signature::finalize(),
            None,
            is_initial_thread,
        )
        .map(|_| ())
    }

    /// Execute a data collective on `MPI_COMM_WORLD`.
    pub fn collective(
        &self,
        rank: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.collective_on(rank, COMM_WORLD, sig, payload, is_initial_thread)
    }

    /// Execute a data collective on a communicator. `sig` must describe
    /// the operation (kind/op/root/type) with the root as a *local*
    /// rank; `payload` carries this rank's contribution. Returns this
    /// rank's result value.
    pub fn collective_on(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        if let Some(root) = sig.root {
            let size = self.comm_size(comm).unwrap_or(0);
            if root >= size {
                let err = MpiError::ArgError(format!(
                    "root {root} out of range for communicator size {size}"
                ));
                self.abort(err.clone());
                return Err(err);
            }
        }
        self.enter_collective(rank, comm, sig, payload, is_initial_thread)
    }

    /// `MPI_Comm_split(parent, color, key)` — collective over the
    /// parent communicator. Members with equal `color` form a new
    /// communicator, ordered by (`key`, parent-global rank); the new
    /// handle is returned to each member. Colors must be non-negative.
    pub fn comm_split(
        &self,
        rank: usize,
        parent: usize,
        color: i64,
        key: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        if color < 0 {
            let err = MpiError::ArgError(format!("MPI_Comm_split color must be >= 0, got {color}"));
            self.abort(err.clone());
            return Err(err);
        }
        let out = self.enter_collective(
            rank,
            parent,
            Signature::comm_split(),
            Some(MpiValue::ArrayInt(vec![color, key])),
            is_initial_thread,
        )?;
        Ok(out.as_int() as usize)
    }

    /// `MPI_Comm_dup(comm)` — collective over `comm`; returns a new
    /// handle with the same members but a fresh matching space.
    pub fn comm_dup(
        &self,
        rank: usize,
        comm: usize,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        let out =
            self.enter_collective(rank, comm, Signature::comm_dup(), None, is_initial_thread)?;
        Ok(out.as_int() as usize)
    }

    /// Point-to-point epoch census (the PARCOACH `CC` protocol extended
    /// to p2p): a world-synchronizing control collective returning, for
    /// every communicator, the total messages sent and received on it.
    /// Placed by the instrumentation immediately before `MPI_Finalize`,
    /// where all buffered traffic must have been consumed — the epoch's
    /// final synchronization point. The per-communicator counters reset
    /// after the census (the epoch ends).
    pub fn p2p_census(
        &self,
        rank: usize,
        is_initial_thread: bool,
    ) -> Result<Vec<P2pCensusRow>, MpiError> {
        let out = self.enter_collective(
            rank,
            COMM_WORLD,
            Signature::p2p_census(),
            None,
            is_initial_thread,
        )?;
        let MpiValue::ArrayInt(flat) = out else {
            panic!("census result must be an int array, got {:?}", out.ty());
        };
        Ok(flat
            .chunks(3)
            .map(|c| (c[0] as usize, c[1] as u64, c[2] as u64))
            .collect())
    }

    /// Buffered (non-blocking) send on a communicator; `dest` is the
    /// destination's local rank within `comm`.
    pub fn send_on(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = {
            let mut st = self.state.lock();
            deliver(&mut st, rank, comm, dest, tag, value)
        };
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.cv.notify_all();
        self.leave_mpi(rank);
        result
    }

    /// `MPI_Isend`: buffered send on a communicator (the message is
    /// delivered immediately, exactly like [`World::send_on`] — eager
    /// protocol); returns a request handle that completes trivially at
    /// [`World::wait`].
    pub fn isend(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result: Result<usize, MpiError> = (|| {
            let mut st = self.state.lock();
            deliver(&mut st, rank, comm, dest, tag, value)?;
            st.requests.push(Request {
                owner: rank,
                state: RequestState::SendDone,
            });
            Ok(st.requests.len() - 1)
        })();
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.cv.notify_all();
        self.leave_mpi(rank);
        result
    }

    /// `MPI_Irecv`: non-blocking receive post on a communicator. `src`
    /// may be [`parcoach_front::ast::ANY_SOURCE`] and `tag` may be
    /// [`parcoach_front::ast::ANY_TAG`]; otherwise both must be
    /// non-negative (and `src` a member of `comm`). Never blocks — the
    /// matching message is consumed by [`World::wait`].
    pub fn irecv(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = (|| {
            let (s, t) = decode_recv_key(src, tag)?;
            let mut st = self.state.lock();
            let Some(c) = st.comms.get(comm) else {
                return Err(bad_comm(comm));
            };
            if c.local_rank(rank).is_none() {
                return Err(not_member(rank, comm));
            }
            if let Some(s) = s {
                if s >= c.members.len() {
                    return Err(MpiError::ArgError(format!(
                        "irecv source {s} out of range for communicator size {}",
                        c.members.len()
                    )));
                }
            }
            st.requests.push(Request {
                owner: rank,
                state: RequestState::RecvPending {
                    comm,
                    src: s,
                    tag: t,
                },
            });
            Ok(st.requests.len() - 1)
        })();
        if let Err(e) = &result {
            self.abort(e.clone());
        }
        self.leave_mpi(rank);
        result
    }

    /// `MPI_Wait`: block until `request` completes. Send requests
    /// retire immediately (returning `Int(0)`); receive requests block
    /// until a matching message is buffered, consume it (deterministic
    /// wildcard tie-break: lowest sender rank first, then earliest
    /// arrival) and return its value. Waiting twice on one request, or
    /// on another rank's request, is an argument error.
    pub fn wait(
        &self,
        rank: usize,
        request: usize,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.wait_inner(rank, request);
        self.leave_mpi(rank);
        result
    }

    fn wait_inner(&self, rank: usize, request: usize) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        let req = match st.requests.get(request).cloned() {
            Some(r) => r,
            None => {
                let err = MpiError::ArgError(format!("invalid request handle #{request}"));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        };
        if req.owner != rank {
            let err = MpiError::ArgError(format!(
                "rank {rank} cannot wait on request #{request} posted by rank {}",
                req.owner
            ));
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        }
        let (comm, src, tag) = match req.state {
            RequestState::SendDone => {
                st.requests[request].state = RequestState::Retired;
                return Ok(MpiValue::Int(0));
            }
            RequestState::Retired => {
                let err = MpiError::ArgError(format!(
                    "request #{request} was already completed by a previous wait"
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
            RequestState::RecvPending { comm, src, tag } => (comm, src, tag),
        };
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            // Re-read the state every round: under MPI_THREAD_MULTIPLE a
            // sibling thread waiting on the same request may have
            // completed it while we slept — that is a double wait and
            // must error, not steal the next matching message.
            if matches!(st.requests[request].state, RequestState::Retired) {
                let err = MpiError::ArgError(format!(
                    "request #{request} was already completed by a previous wait"
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
            if let Some(pos) = matching_message(&st.mailboxes[rank], comm, src, tag) {
                let msg = st.mailboxes[rank].remove(pos);
                let my_local = st.comms[comm]
                    .local_rank(rank)
                    .expect("membership checked at post time");
                st.comms[comm].p2p_recvd[my_local] += 1;
                st.requests[request].state = RequestState::Retired;
                st.activity[rank] = RankActivity::Running;
                return Ok(msg.value);
            }
            st.activity[rank] = RankActivity::InWait {
                request,
                comm,
                src,
                tag,
            };
            if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "MPI_Wait(req #{request}){} on rank {rank}",
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }

    /// Buffered send on `MPI_COMM_WORLD`.
    pub fn send(
        &self,
        rank: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        self.send_on(rank, COMM_WORLD, dest, tag, value, is_initial_thread)
    }

    /// Blocking receive of a message from local rank `src` with `tag`
    /// on a communicator. `src` accepts [`parcoach_front::ast::ANY_SOURCE`]
    /// and `tag` accepts [`parcoach_front::ast::ANY_TAG`] — the same
    /// wildcards (and deterministic tie-break) as [`World::irecv`].
    pub fn recv_on(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.recv_inner(rank, comm, src, tag);
        self.leave_mpi(rank);
        result
    }

    /// Blocking receive on `MPI_COMM_WORLD`.
    pub fn recv(
        &self,
        rank: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.recv_on(rank, COMM_WORLD, src, tag, is_initial_thread)
    }

    fn recv_inner(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        let (src, tag) = match decode_recv_key(src, tag) {
            Ok(k) => k,
            Err(err) => {
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        };
        let Some(c) = st.comms.get(comm) else {
            let err = bad_comm(comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let Some(my_local) = c.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        if let Some(s) = src {
            if s >= c.members.len() {
                let err = MpiError::ArgError(format!(
                    "recv source {s} out of range for communicator size {}",
                    c.members.len()
                ));
                self.abort_locked(&mut st, err.clone());
                return Err(err);
            }
        }
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            if let Some(pos) = matching_message(&st.mailboxes[rank], comm, src, tag) {
                let msg = st.mailboxes[rank].remove(pos);
                st.comms[comm].p2p_recvd[my_local] += 1;
                st.activity[rank] = RankActivity::Running;
                return Ok(msg.value);
            }
            st.activity[rank] = RankActivity::InRecv { comm, src, tag };
            if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "MPI_Recv(src={}, tag={}{}) on rank {rank}",
                        value_or_any(src),
                        value_or_any(tag),
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }

    fn abort_locked(&self, st: &mut WorldState, err: MpiError) {
        if st.abort.is_none() {
            st.abort = Some(err);
        }
        self.cv.notify_all();
    }

    fn enter_collective(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.enter_collective_inner(rank, comm, sig, payload);
        self.leave_mpi(rank);
        result
    }

    fn enter_collective_inner(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let Some(c) = st.comms.get(comm) else {
            let err = bad_comm(comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let Some(local) = c.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.abort_locked(&mut st, err.clone());
            return Err(err);
        };
        let size = c.members.len();
        let seq = st.comms[comm].per_rank_seq[local];
        st.comms[comm].per_rank_seq[local] += 1;
        // Materialize instances up to `seq`.
        while st.comms[comm].base_seq + (st.comms[comm].instances.len() as u64) <= seq {
            st.comms[comm].instances.push_back(Instance::new(size));
        }
        let idx = (seq - st.comms[comm].base_seq) as usize;
        let complete = {
            let inst = &mut st.comms[comm].instances[idx];
            match &inst.signature {
                None => {
                    inst.signature = Some(sig);
                    inst.first_rank = rank;
                }
                Some(existing) if *existing != sig => {
                    let err = MpiError::CollectiveMismatch {
                        comm,
                        seq,
                        expected: *existing,
                        expected_rank: inst.first_rank,
                        got: sig,
                        got_rank: rank,
                    };
                    st.abort = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
                Some(_) => {}
            }
            inst.payloads[local] = payload;
            inst.arrived_count += 1;
            inst.arrived_count == size
        };
        if complete {
            // Compute results outside the instance borrow: communicator
            // management collectives allocate new communicators.
            let payloads = st.comms[comm].instances[idx].payloads.clone();
            let results = match sig.op {
                CollectiveOp::CommSplit => split_results(&mut st, comm, &payloads),
                CollectiveOp::CommDup => Ok(dup_results(&mut st, comm)),
                CollectiveOp::P2pCensus => Ok(census_results(&mut st, size)),
                _ => compute_results(sig, &payloads, size),
            };
            match results {
                Ok(results) => {
                    st.comms[comm].instances[idx].results = Some(results);
                    self.cv.notify_all();
                }
                Err(err) => {
                    st.abort = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
            }
        }
        st.activity[rank] = RankActivity::InCollective {
            seq,
            what: format!("{sig}{}", comm_suffix(comm)),
        };
        // Wait for results.
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            let idx = (seq - st.comms[comm].base_seq) as usize;
            let done = {
                let inst = &mut st.comms[comm].instances[idx];
                if let Some(results) = &inst.results {
                    let out = results[local].clone();
                    inst.collected[local] = true;
                    inst.collected_count += 1;
                    Some(out)
                } else {
                    None
                }
            };
            if let Some(out) = done {
                st.activity[rank] = RankActivity::Running;
                // Drop fully-collected instances from the front.
                let cs = &mut st.comms[comm];
                while let Some(front) = cs.instances.front() {
                    if front.collected_count == cs.members.len() {
                        cs.instances.pop_front();
                        cs.base_seq += 1;
                    } else {
                        break;
                    }
                }
                return Ok(out);
            }
            if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!(
                        "{sig}{} on rank {rank} (collective #{seq})",
                        comm_suffix(comm)
                    ),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }
}

/// Deliver one buffered message — the shared core of the blocking and
/// non-blocking sends: validates the destination and tag, bumps the
/// sender's per-communicator counter and appends to the destination's
/// mailbox.
fn deliver(
    st: &mut WorldState,
    rank: usize,
    comm: usize,
    dest: usize,
    tag: i64,
    value: MpiValue,
) -> Result<(), MpiError> {
    if tag < 0 {
        return Err(MpiError::ArgError(format!(
            "send tag {tag} must be non-negative (wildcards are receive-only)"
        )));
    }
    let Some(c) = st.comms.get(comm) else {
        return Err(bad_comm(comm));
    };
    let Some(src_local) = c.local_rank(rank) else {
        return Err(not_member(rank, comm));
    };
    if dest >= c.members.len() {
        return Err(MpiError::ArgError(format!(
            "send destination {dest} out of range for communicator size {}",
            c.members.len()
        )));
    }
    let global_dest = c.members[dest];
    st.comms[comm].p2p_sent[src_local] += 1;
    st.mailboxes[global_dest].push(Message {
        comm,
        src: src_local,
        tag,
        value,
    });
    Ok(())
}

fn bad_comm(comm: usize) -> MpiError {
    MpiError::ArgError(format!("invalid communicator handle #{comm}"))
}

fn not_member(rank: usize, comm: usize) -> MpiError {
    MpiError::ArgError(format!(
        "rank {rank} is not a member of communicator #{comm}"
    ))
}

/// Render an optional receive-key field as its value or `ANY`.
fn value_or_any(v: Option<impl std::fmt::Display>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "ANY".into())
}

/// Suffix for activity/error strings; empty for the world.
fn comm_suffix(comm: usize) -> String {
    if comm == COMM_WORLD {
        String::new()
    } else {
        format!(" on comm #{comm}")
    }
}

/// `MPI_Comm_split` results: group the parent's members by color,
/// order each group by (key, global rank), allocate one new
/// communicator per color (ascending), and hand every member its
/// group's handle.
fn split_results(
    st: &mut WorldState,
    parent: usize,
    payloads: &[Option<MpiValue>],
) -> Result<Vec<MpiValue>, MpiError> {
    let members = st.comms[parent].members.clone();
    let mut entries: Vec<(i64, i64, usize)> = Vec::with_capacity(members.len()); // (color, key, global)
    for (local, p) in payloads.iter().enumerate() {
        match p {
            Some(MpiValue::ArrayInt(ck)) if ck.len() == 2 => {
                entries.push((ck[0], ck[1], members[local]));
            }
            _ => {
                return Err(MpiError::ArgError(
                    "MPI_Comm_split payload must be [color, key]".into(),
                ))
            }
        }
    }
    let mut colors: Vec<i64> = entries.iter().map(|e| e.0).collect();
    colors.sort_unstable();
    colors.dedup();
    let mut handle_of_global: Vec<(usize, usize)> = Vec::new(); // (global, handle)
    for color in colors {
        let mut group: Vec<(i64, usize)> = entries
            .iter()
            .filter(|e| e.0 == color)
            .map(|e| (e.1, e.2))
            .collect();
        group.sort_unstable();
        let handle = st.comms.len();
        let group_members: Vec<usize> = group.iter().map(|&(_, g)| g).collect();
        for &g in &group_members {
            handle_of_global.push((g, handle));
        }
        st.comms.push(CommState::new(group_members));
    }
    Ok(members
        .iter()
        .map(|g| {
            let h = handle_of_global
                .iter()
                .find(|(gg, _)| gg == g)
                .expect("every member is in a group")
                .1;
            MpiValue::Int(h as i64)
        })
        .collect())
}

/// `MPI_Comm_dup` results: one new communicator with the same members.
fn dup_results(st: &mut WorldState, parent: usize) -> Vec<MpiValue> {
    let members = st.comms[parent].members.clone();
    let size = members.len();
    let handle = st.comms.len();
    st.comms.push(CommState::new(members));
    vec![MpiValue::Int(handle as i64); size]
}

/// P2p census results: snapshot the per-communicator send/receive
/// totals, then reset the counters (the epoch ends at the census).
fn census_results(st: &mut WorldState, size: usize) -> Vec<MpiValue> {
    let mut flat: Vec<i64> = Vec::with_capacity(st.comms.len() * 3);
    for (h, c) in st.comms.iter().enumerate() {
        flat.push(h as i64);
        flat.push(c.p2p_sent.iter().sum::<u64>() as i64);
        flat.push(c.p2p_recvd.iter().sum::<u64>() as i64);
    }
    for c in st.comms.iter_mut() {
        c.p2p_sent.iter_mut().for_each(|x| *x = 0);
        c.p2p_recvd.iter_mut().for_each(|x| *x = 0);
    }
    vec![MpiValue::ArrayInt(flat); size]
}

/// Global liveness census: `Some(Deadlock)` when nothing can progress.
///
/// Soundness note: under `MPI_THREAD_MULTIPLE` a rank blocked in MPI may
/// still be rescued by *another thread* of the same rank (e.g. a
/// self-send), which the world cannot observe. The census therefore only
/// fires when that is impossible — the provided level forbids a second
/// concurrent MPI call, or some rank has already terminated. Pure
/// MULTIPLE stalls fall back to the operation timeout.
fn deadlock(st: &WorldState) -> Option<MpiError> {
    // Any rank still running may still make progress.
    if st
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Running))
    {
        return None;
    }
    let provided = st.provided.unwrap_or(ThreadLevel::Multiple);
    let any_finished = st
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Finished));
    if provided == ThreadLevel::Multiple && !any_finished {
        return None; // cannot rule out rescue by another thread
    }
    // A completed-but-uncollected instance (on any communicator) will
    // wake its waiters.
    if st
        .comms
        .iter()
        .flat_map(|c| c.instances.iter())
        .any(|i| i.results.is_some())
    {
        return None;
    }
    // A recv/wait whose message is already buffered will complete.
    for (rank, act) in st.activity.iter().enumerate() {
        let (comm, src, tag) = match act {
            RankActivity::InRecv { comm, src, tag }
            | RankActivity::InWait { comm, src, tag, .. } => (*comm, *src, *tag),
            _ => continue,
        };
        if matching_message(&st.mailboxes[rank], comm, src, tag).is_some() {
            return None;
        }
    }
    // All blocked/finished and nothing completable.
    if st
        .activity
        .iter()
        .all(|a| matches!(a, RankActivity::Finished))
    {
        return None; // clean exit
    }
    // Genuine deadlock. Before reporting the generic form, build the
    // wait-for graph over the blocked receives/waits: an edge
    // rank → r exists when rank awaits a message only r could send
    // (pinned source; nothing matching buffered — checked above). A
    // cycle names the ranks that starve each other, the precise report
    // a hung `MPI_Wait` chain deserves.
    if let Some(cycle) = wait_for_cycle(st) {
        return Some(MpiError::WaitCycle {
            cycle,
            states: st.activity.clone(),
        });
    }
    Some(MpiError::Deadlock {
        states: st.activity.clone(),
    })
}

/// Find a cycle in the wait-for graph of blocked pinned-source
/// receives/waits, as global ranks in wait-for order.
fn wait_for_cycle(st: &WorldState) -> Option<Vec<usize>> {
    let n = st.activity.len();
    let mut edge: Vec<Option<usize>> = vec![None; n];
    for (rank, act) in st.activity.iter().enumerate() {
        let (comm, src) = match act {
            RankActivity::InRecv {
                comm, src: Some(s), ..
            }
            | RankActivity::InWait {
                comm, src: Some(s), ..
            } => (*comm, *s),
            _ => continue,
        };
        let Some(c) = st.comms.get(comm) else {
            continue;
        };
        let Some(&awaited_global) = c.members.get(src) else {
            continue;
        };
        edge[rank] = Some(awaited_global);
    }
    for start in 0..n {
        let mut cur = start;
        let mut path = Vec::new();
        let mut on_path = vec![false; n];
        while let Some(next) = edge[cur] {
            if on_path[cur] {
                break; // cycle not through `start`; a later start finds it
            }
            on_path[cur] = true;
            path.push(cur);
            cur = next;
            if cur == start {
                return Some(path);
            }
        }
    }
    None
}

/// Compute per-(local-)rank results once all payloads arrived.
fn compute_results(
    sig: Signature,
    payloads: &[Option<MpiValue>],
    size: usize,
) -> Result<Vec<MpiValue>, MpiError> {
    let payloads: Vec<&MpiValue> = match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => Vec::new(),
        _ => {
            let mut v = Vec::with_capacity(size);
            for (r, p) in payloads.iter().enumerate() {
                match p {
                    Some(x) => v.push(x),
                    None => {
                        return Err(MpiError::ArgError(format!(
                            "rank {r} entered {sig} without a payload"
                        )))
                    }
                }
            }
            v
        }
    };
    let dummy = MpiValue::Int(0);
    Ok(match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => vec![dummy; size],
        CollectiveOp::CommSplit | CollectiveOp::CommDup | CollectiveOp::P2pCensus => {
            unreachable!("handled by the caller with world access")
        }
        CollectiveOp::ControlCc => {
            let colors: Vec<i64> = payloads.iter().map(|p| p.as_int()).collect();
            vec![MpiValue::ArrayInt(colors); size]
        }
        CollectiveOp::Bcast => {
            let root = sig.root.expect("bcast has root");
            vec![payloads[root].clone(); size]
        }
        CollectiveOp::Allreduce => {
            let op = sig.reduce_op.expect("allreduce has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            vec![acc; size]
        }
        CollectiveOp::Reduce => {
            let op = sig.reduce_op.expect("reduce has op");
            let root = sig.root.expect("reduce has root");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            // Root receives the reduction; other ranks get their own
            // contribution back (documented simulator semantics).
            (0..size)
                .map(|r| {
                    if r == root {
                        acc.clone()
                    } else {
                        payloads[r].clone()
                    }
                })
                .collect()
        }
        CollectiveOp::Scan => {
            let op = sig.reduce_op.expect("scan has op");
            let mut acc: Option<MpiValue> = None;
            payloads
                .iter()
                .map(|p| {
                    acc = Some(match &acc {
                        None => (*p).clone(),
                        Some(a) => reduce_scalar(op, a, p),
                    });
                    acc.clone().expect("just set")
                })
                .collect()
        }
        CollectiveOp::Gather => {
            let root = sig.root.expect("gather has root");
            let gathered = gather_array(&payloads)?;
            (0..size)
                .map(|r| {
                    if r == root {
                        gathered.clone()
                    } else {
                        empty_like(&gathered)
                    }
                })
                .collect()
        }
        CollectiveOp::Allgather => {
            let gathered = gather_array(&payloads)?;
            vec![gathered; size]
        }
        CollectiveOp::Scatter => {
            let root = sig.root.expect("scatter has root");
            scatter_elems(payloads[root], size, &sig)?
        }
        CollectiveOp::Alltoall => {
            // Rank r receives element r of every rank's array.
            let mut out = Vec::with_capacity(size);
            for r in 0..size {
                match payloads[0] {
                    MpiValue::ArrayInt(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayInt(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayInt(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayInt(row));
                    }
                    MpiValue::ArrayFloat(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayFloat(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayFloat(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayFloat(row));
                    }
                    _ => return Err(MpiError::ArgError("alltoall needs arrays".into())),
                }
            }
            out
        }
        CollectiveOp::ReduceScatter => {
            let op = sig.reduce_op.expect("reduce_scatter has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_array(op, &acc, p);
            }
            scatter_elems(&acc, size, &sig)?
        }
    })
}

fn gather_array(payloads: &[&MpiValue]) -> Result<MpiValue, MpiError> {
    match payloads[0] {
        MpiValue::Int(_) => Ok(MpiValue::ArrayInt(
            payloads.iter().map(|p| p.as_int()).collect(),
        )),
        MpiValue::Float(_) => Ok(MpiValue::ArrayFloat(
            payloads.iter().map(|p| p.as_float()).collect(),
        )),
        _ => Err(MpiError::ArgError(
            "gather/allgather needs scalar contributions".into(),
        )),
    }
}

fn empty_like(v: &MpiValue) -> MpiValue {
    match v {
        MpiValue::ArrayInt(_) => MpiValue::ArrayInt(Vec::new()),
        MpiValue::ArrayFloat(_) => MpiValue::ArrayFloat(Vec::new()),
        _ => MpiValue::Int(0),
    }
}

fn scatter_elems(src: &MpiValue, size: usize, sig: &Signature) -> Result<Vec<MpiValue>, MpiError> {
    match src {
        MpiValue::ArrayInt(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Int(x)).collect())
        }
        MpiValue::ArrayFloat(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Float(x)).collect())
        }
        _ => Err(MpiError::ArgError(format!("{sig} needs an array payload"))),
    }
}

fn short_array(sig: &Signature, len: usize, size: usize) -> MpiError {
    MpiError::ArgError(format!(
        "{sig}: array of length {len} is shorter than the communicator size {size}"
    ))
}

/// Run `f(rank)` for every rank of `world` concurrently — one dedicated
/// thread per rank from the shared simulator thread cache (reused across
/// worlds instead of respawned) — and collect the per-rank results in
/// rank order.
///
/// Ranks may block in collectives/recv; the cache guarantees all of
/// them run simultaneously, which the matching engine's liveness census
/// assumes.
pub fn run_ranks<R, F>(world: &Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parcoach_pool::thread_cache().run_map(world.size(), f)
}

/// Convenience: the signature of a data collective from IR-level facts.
pub fn data_signature(
    kind: parcoach_front::ast::CollectiveKind,
    reduce_op: Option<ReduceOp>,
    root: Option<usize>,
    ty: Option<MpiType>,
) -> Signature {
    Signature::collective(kind.into(), reduce_op, root, ty)
}
