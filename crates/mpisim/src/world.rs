//! The simulated MPI world: ranks, the collective matching engine,
//! thread-level enforcement, point-to-point messaging, deadlock
//! detection and the PARCOACH `CC` control collective.
//!
//! ## Matching model
//!
//! Per communicator (we model `MPI_COMM_WORLD`), collectives match in
//! per-rank program order: the n-th collective call of every rank forms
//! instance `n`. The first arriver fixes the instance's
//! [`Signature`]; any rank arriving with a different signature is a
//! **collective mismatch** and aborts the world with both signatures and
//! ranks — this is what MUST's tree-based matcher reports, and what the
//! PARCOACH `CC` turns into a *pre*-collective error with source lines.
//!
//! ## Deadlock detection
//!
//! A real MPI run with mismatched collective *counts* hangs. Here every
//! blocking wait participates in a liveness census: when **all** ranks
//! are blocked (collective/recv) or finished and nothing can complete,
//! the world aborts with a per-rank activity dump; a rank finishing
//! while others wait in a collective aborts immediately.

use crate::error::{MpiError, RankActivity};
use crate::signature::{CollectiveOp, Signature};
use crate::value::{reduce_array, reduce_scalar, MpiType, MpiValue};
use parcoach_front::ast::{ReduceOp, ThreadLevel};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// World configuration.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub world_size: usize,
    /// The highest thread level this "implementation" grants.
    pub max_provided: ThreadLevel,
    /// Blocking-operation timeout (deadlock fallback).
    pub op_timeout: Duration,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            world_size: 2,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_secs(10),
        }
    }
}

/// One buffered point-to-point message.
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: i64,
    value: MpiValue,
}

/// One collective instance (the n-th collective of the communicator).
struct Instance {
    signature: Option<Signature>,
    first_rank: usize,
    payloads: Vec<Option<MpiValue>>,
    arrived_count: usize,
    results: Option<Vec<MpiValue>>,
    collected: Vec<bool>,
    collected_count: usize,
}

impl Instance {
    fn new(size: usize) -> Instance {
        Instance {
            signature: None,
            first_rank: 0,
            payloads: vec![None; size],
            arrived_count: 0,
            results: None,
            collected: vec![false; size],
            collected_count: 0,
        }
    }
}

struct WorldState {
    instances: VecDeque<Instance>,
    base_seq: u64,
    per_rank_seq: Vec<u64>,
    activity: Vec<RankActivity>,
    mailboxes: Vec<Vec<Message>>,
    abort: Option<MpiError>,
    provided: Option<ThreadLevel>,
    /// Number of MPI calls currently in flight per rank (threads).
    in_flight: Vec<usize>,
}

/// The simulated MPI world. Shared by all rank threads via `Arc`.
pub struct World {
    cfg: MpiConfig,
    state: Mutex<WorldState>,
    cv: Condvar,
}

/// Result of the `CC` control collective: the per-rank colors.
#[derive(Debug, Clone, PartialEq)]
pub struct CcOutcome {
    /// Color communicated by each rank.
    pub colors: Vec<u32>,
}

impl CcOutcome {
    /// True when all ranks communicated the same color.
    pub fn unanimous(&self) -> bool {
        self.colors.windows(2).all(|w| w[0] == w[1])
    }

    /// Minimum and maximum color (the paper's `(min, max)` all-reduce).
    pub fn min_max(&self) -> (u32, u32) {
        let min = self.colors.iter().copied().min().unwrap_or(0);
        let max = self.colors.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

impl World {
    /// Create a world of `cfg.world_size` ranks.
    pub fn new(cfg: MpiConfig) -> Arc<World> {
        let size = cfg.world_size.max(1);
        Arc::new(World {
            state: Mutex::new(WorldState {
                instances: VecDeque::new(),
                base_seq: 0,
                per_rank_seq: vec![0; size],
                activity: vec![RankActivity::Running; size],
                mailboxes: vec![Vec::new(); size],
                abort: None,
                provided: None,
                in_flight: vec![0; size],
            }),
            cv: Condvar::new(),
            cfg: MpiConfig {
                world_size: size,
                ..cfg
            },
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.cfg.world_size
    }

    /// `MPI_Init(_thread)`: returns the provided level
    /// (`min(required, max_provided)`).
    pub fn init(&self, _rank: usize, required: ThreadLevel) -> ThreadLevel {
        let provided = required.min(self.cfg.max_provided);
        let mut st = self.state.lock();
        // First init fixes the level; later inits (other ranks) keep the
        // weakest requested so enforcement is uniform.
        st.provided = Some(match st.provided {
            None => provided,
            Some(cur) => cur.min(provided),
        });
        provided
    }

    /// The currently provided thread level (`Multiple` before init —
    /// enforcement only starts once the program declared its level).
    pub fn provided(&self) -> ThreadLevel {
        self.state.lock().provided.unwrap_or(ThreadLevel::Multiple)
    }

    /// Abort the world: all blocked and future operations fail with
    /// [`MpiError::Aborted`] carrying `reason`. The first abort wins.
    pub fn abort(&self, reason: MpiError) {
        let mut st = self.state.lock();
        if st.abort.is_none() {
            st.abort = Some(reason);
        }
        self.cv.notify_all();
    }

    /// The abort reason, if the world aborted.
    pub fn abort_reason(&self) -> Option<MpiError> {
        self.state.lock().abort.clone()
    }

    /// Guard every MPI entry: enforces the provided thread level.
    ///
    /// `is_initial_thread` = the calling thread is the process's initial
    /// thread (master of every enclosing team).
    fn enter_mpi(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let provided = st.provided.unwrap_or(ThreadLevel::Multiple);
        let concurrent = st.in_flight[rank] > 0;
        let violation = match provided {
            ThreadLevel::Multiple => None,
            ThreadLevel::Serialized => concurrent.then(|| {
                "two threads of the same process are inside MPI simultaneously".to_string()
            }),
            ThreadLevel::Funneled => {
                if !is_initial_thread {
                    Some("an MPI call was made by a thread other than the main thread".into())
                } else if concurrent {
                    Some("concurrent MPI calls under MPI_THREAD_FUNNELED".into())
                } else {
                    None
                }
            }
            ThreadLevel::Single => {
                if !is_initial_thread {
                    Some(
                        "an MPI call was made from a spawned thread under MPI_THREAD_SINGLE".into(),
                    )
                } else if concurrent {
                    Some("concurrent MPI calls under MPI_THREAD_SINGLE".into())
                } else {
                    None
                }
            }
        };
        if let Some(detail) = violation {
            let err = MpiError::ThreadLevelViolation { provided, detail };
            if st.abort.is_none() {
                st.abort = Some(err.clone());
            }
            self.cv.notify_all();
            return Err(err);
        }
        st.in_flight[rank] += 1;
        Ok(())
    }

    fn leave_mpi(&self, rank: usize) {
        let mut st = self.state.lock();
        st.in_flight[rank] = st.in_flight[rank].saturating_sub(1);
    }

    /// Mark a rank's program as terminated. Detects "finished while
    /// others wait in a collective".
    pub fn finish_rank(&self, rank: usize) {
        let mut st = self.state.lock();
        st.activity[rank] = RankActivity::Finished;
        if st.abort.is_none() {
            let pending_collective = st
                .instances
                .iter()
                .any(|i| i.results.is_none() && i.arrived_count > 0);
            let all_settled = st
                .activity
                .iter()
                .all(|a| !matches!(a, RankActivity::Running));
            if pending_collective && all_settled {
                st.abort = Some(MpiError::RankFinishedEarly {
                    finished_rank: rank,
                    states: st.activity.clone(),
                });
            } else if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl);
            }
        }
        self.cv.notify_all();
    }

    /// The PARCOACH `CC` control collective: all-reduce the color and
    /// return every rank's color.
    pub fn control_cc(
        &self,
        rank: usize,
        color: u32,
        is_initial_thread: bool,
    ) -> Result<CcOutcome, MpiError> {
        let out = self.enter_collective(
            rank,
            Signature::control_cc(),
            Some(MpiValue::Int(color as i64)),
            is_initial_thread,
        )?;
        match out {
            MpiValue::ArrayInt(colors) => Ok(CcOutcome {
                colors: colors.into_iter().map(|c| c as u32).collect(),
            }),
            other => panic!("CC result must be an int array, got {:?}", other.ty()),
        }
    }

    /// `MPI_Finalize` — synchronizing pseudo-collective.
    pub fn finalize(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        self.enter_collective(rank, Signature::finalize(), None, is_initial_thread)
            .map(|_| ())
    }

    /// Execute a data collective. `sig` must describe the operation
    /// (kind/op/root/type); `payload` carries this rank's contribution.
    /// Returns this rank's result value.
    pub fn collective(
        &self,
        rank: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        if let Some(root) = sig.root {
            if root >= self.cfg.world_size {
                let err = MpiError::ArgError(format!(
                    "root {root} out of range for world size {}",
                    self.cfg.world_size
                ));
                self.abort(err.clone());
                return Err(err);
            }
        }
        self.enter_collective(rank, sig, payload, is_initial_thread)
    }

    /// Buffered (non-blocking) send.
    pub fn send(
        &self,
        rank: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        if dest >= self.cfg.world_size {
            let err = MpiError::ArgError(format!(
                "send destination {dest} out of range for world size {}",
                self.cfg.world_size
            ));
            self.abort(err.clone());
            return Err(err);
        }
        self.enter_mpi(rank, is_initial_thread)?;
        let mut st = self.state.lock();
        st.mailboxes[dest].push(Message {
            src: rank,
            tag,
            value,
        });
        drop(st);
        self.cv.notify_all();
        self.leave_mpi(rank);
        Ok(())
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(
        &self,
        rank: usize,
        src: usize,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        if src >= self.cfg.world_size {
            let err = MpiError::ArgError(format!(
                "recv source {src} out of range for world size {}",
                self.cfg.world_size
            ));
            self.abort(err.clone());
            return Err(err);
        }
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.recv_inner(rank, src, tag);
        self.leave_mpi(rank);
        result
    }

    fn recv_inner(&self, rank: usize, src: usize, tag: i64) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            if let Some(pos) = st.mailboxes[rank]
                .iter()
                .position(|m| m.src == src && m.tag == tag)
            {
                let msg = st.mailboxes[rank].remove(pos);
                st.activity[rank] = RankActivity::Running;
                return Ok(msg.value);
            }
            st.activity[rank] = RankActivity::InRecv { src, tag };
            if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!("MPI_Recv(src={src}, tag={tag}) on rank {rank}"),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }

    fn enter_collective(
        &self,
        rank: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.enter_collective_inner(rank, sig, payload);
        self.leave_mpi(rank);
        result
    }

    fn enter_collective_inner(
        &self,
        rank: usize,
        sig: Signature,
        payload: Option<MpiValue>,
    ) -> Result<MpiValue, MpiError> {
        let size = self.cfg.world_size;
        let deadline = Instant::now() + self.cfg.op_timeout;
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(MpiError::Aborted(e.to_string()));
        }
        let seq = st.per_rank_seq[rank];
        st.per_rank_seq[rank] += 1;
        // Materialize instances up to `seq`.
        while st.base_seq + (st.instances.len() as u64) <= seq {
            st.instances.push_back(Instance::new(size));
        }
        let base = st.base_seq;
        let idx = (seq - base) as usize;
        {
            let inst = &mut st.instances[idx];
            match &inst.signature {
                None => {
                    inst.signature = Some(sig);
                    inst.first_rank = rank;
                }
                Some(existing) if *existing != sig => {
                    let err = MpiError::CollectiveMismatch {
                        seq,
                        expected: *existing,
                        expected_rank: inst.first_rank,
                        got: sig,
                        got_rank: rank,
                    };
                    st.abort = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
                Some(_) => {}
            }
            inst.payloads[rank] = payload;
            inst.arrived_count += 1;
            if inst.arrived_count == size {
                match compute_results(inst, size) {
                    Ok(results) => {
                        inst.results = Some(results);
                        self.cv.notify_all();
                    }
                    Err(err) => {
                        st.abort = Some(err.clone());
                        self.cv.notify_all();
                        return Err(err);
                    }
                }
            }
        }
        st.activity[rank] = RankActivity::InCollective {
            seq,
            what: sig.to_string(),
        };
        // Wait for results.
        loop {
            if let Some(e) = &st.abort {
                return Err(MpiError::Aborted(e.to_string()));
            }
            let base = st.base_seq;
            let idx = (seq - base) as usize;
            let done = {
                let inst = &mut st.instances[idx];
                if let Some(results) = &inst.results {
                    let out = results[rank].clone();
                    inst.collected[rank] = true;
                    inst.collected_count += 1;
                    Some(out)
                } else {
                    None
                }
            };
            if let Some(out) = done {
                st.activity[rank] = RankActivity::Running;
                // Drop fully-collected instances from the front.
                while let Some(front) = st.instances.front() {
                    if front.collected_count == size {
                        st.instances.pop_front();
                        st.base_seq += 1;
                    } else {
                        break;
                    }
                }
                return Ok(out);
            }
            if let Some(dl) = deadlock(&st) {
                st.abort = Some(dl.clone());
                self.cv.notify_all();
                return Err(dl);
            }
            let res = self.cv.wait_until(&mut st, deadline);
            if res.timed_out() {
                let err = MpiError::Timeout {
                    what: format!("{sig} on rank {rank} (collective #{seq})"),
                    states: st.activity.clone(),
                };
                st.abort = Some(err.clone());
                self.cv.notify_all();
                return Err(err);
            }
        }
    }
}

/// Global liveness census: `Some(Deadlock)` when nothing can progress.
///
/// Soundness note: under `MPI_THREAD_MULTIPLE` a rank blocked in MPI may
/// still be rescued by *another thread* of the same rank (e.g. a
/// self-send), which the world cannot observe. The census therefore only
/// fires when that is impossible — the provided level forbids a second
/// concurrent MPI call, or some rank has already terminated. Pure
/// MULTIPLE stalls fall back to the operation timeout.
fn deadlock(st: &WorldState) -> Option<MpiError> {
    // Any rank still running may still make progress.
    if st
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Running))
    {
        return None;
    }
    let provided = st.provided.unwrap_or(ThreadLevel::Multiple);
    let any_finished = st
        .activity
        .iter()
        .any(|a| matches!(a, RankActivity::Finished));
    if provided == ThreadLevel::Multiple && !any_finished {
        return None; // cannot rule out rescue by another thread
    }
    // A completed-but-uncollected instance will wake its waiters.
    if st.instances.iter().any(|i| i.results.is_some()) {
        return None;
    }
    // A recv whose message is already buffered will complete.
    for (rank, act) in st.activity.iter().enumerate() {
        if let RankActivity::InRecv { src, tag } = act {
            if st.mailboxes[rank]
                .iter()
                .any(|m| m.src == *src && m.tag == *tag)
            {
                return None;
            }
        }
    }
    // All blocked/finished and nothing completable.
    if st
        .activity
        .iter()
        .all(|a| matches!(a, RankActivity::Finished))
    {
        return None; // clean exit
    }
    Some(MpiError::Deadlock {
        states: st.activity.clone(),
    })
}

/// Compute per-rank results once all payloads arrived.
fn compute_results(inst: &Instance, size: usize) -> Result<Vec<MpiValue>, MpiError> {
    let sig = inst.signature.expect("signature fixed by first arrival");
    let payloads: Vec<&MpiValue> = match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => Vec::new(),
        _ => {
            let mut v = Vec::with_capacity(size);
            for (r, p) in inst.payloads.iter().enumerate() {
                match p {
                    Some(x) => v.push(x),
                    None => {
                        return Err(MpiError::ArgError(format!(
                            "rank {r} entered {sig} without a payload"
                        )))
                    }
                }
            }
            v
        }
    };
    let dummy = MpiValue::Int(0);
    Ok(match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => vec![dummy; size],
        CollectiveOp::ControlCc => {
            let colors: Vec<i64> = payloads.iter().map(|p| p.as_int()).collect();
            vec![MpiValue::ArrayInt(colors); size]
        }
        CollectiveOp::Bcast => {
            let root = sig.root.expect("bcast has root");
            vec![payloads[root].clone(); size]
        }
        CollectiveOp::Allreduce => {
            let op = sig.reduce_op.expect("allreduce has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            vec![acc; size]
        }
        CollectiveOp::Reduce => {
            let op = sig.reduce_op.expect("reduce has op");
            let root = sig.root.expect("reduce has root");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            // Root receives the reduction; other ranks get their own
            // contribution back (documented simulator semantics).
            (0..size)
                .map(|r| {
                    if r == root {
                        acc.clone()
                    } else {
                        payloads[r].clone()
                    }
                })
                .collect()
        }
        CollectiveOp::Scan => {
            let op = sig.reduce_op.expect("scan has op");
            let mut acc: Option<MpiValue> = None;
            payloads
                .iter()
                .map(|p| {
                    acc = Some(match &acc {
                        None => (*p).clone(),
                        Some(a) => reduce_scalar(op, a, p),
                    });
                    acc.clone().expect("just set")
                })
                .collect()
        }
        CollectiveOp::Gather => {
            let root = sig.root.expect("gather has root");
            let gathered = gather_array(&payloads)?;
            (0..size)
                .map(|r| {
                    if r == root {
                        gathered.clone()
                    } else {
                        empty_like(&gathered)
                    }
                })
                .collect()
        }
        CollectiveOp::Allgather => {
            let gathered = gather_array(&payloads)?;
            vec![gathered; size]
        }
        CollectiveOp::Scatter => {
            let root = sig.root.expect("scatter has root");
            scatter_elems(payloads[root], size, &sig)?
        }
        CollectiveOp::Alltoall => {
            // Rank r receives element r of every rank's array.
            let mut out = Vec::with_capacity(size);
            for r in 0..size {
                match payloads[0] {
                    MpiValue::ArrayInt(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayInt(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayInt(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayInt(row));
                    }
                    MpiValue::ArrayFloat(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayFloat(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayFloat(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayFloat(row));
                    }
                    _ => return Err(MpiError::ArgError("alltoall needs arrays".into())),
                }
            }
            out
        }
        CollectiveOp::ReduceScatter => {
            let op = sig.reduce_op.expect("reduce_scatter has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_array(op, &acc, p);
            }
            scatter_elems(&acc, size, &sig)?
        }
    })
}

fn gather_array(payloads: &[&MpiValue]) -> Result<MpiValue, MpiError> {
    match payloads[0] {
        MpiValue::Int(_) => Ok(MpiValue::ArrayInt(
            payloads.iter().map(|p| p.as_int()).collect(),
        )),
        MpiValue::Float(_) => Ok(MpiValue::ArrayFloat(
            payloads.iter().map(|p| p.as_float()).collect(),
        )),
        _ => Err(MpiError::ArgError(
            "gather/allgather needs scalar contributions".into(),
        )),
    }
}

fn empty_like(v: &MpiValue) -> MpiValue {
    match v {
        MpiValue::ArrayInt(_) => MpiValue::ArrayInt(Vec::new()),
        MpiValue::ArrayFloat(_) => MpiValue::ArrayFloat(Vec::new()),
        _ => MpiValue::Int(0),
    }
}

fn scatter_elems(src: &MpiValue, size: usize, sig: &Signature) -> Result<Vec<MpiValue>, MpiError> {
    match src {
        MpiValue::ArrayInt(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Int(x)).collect())
        }
        MpiValue::ArrayFloat(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Float(x)).collect())
        }
        _ => Err(MpiError::ArgError(format!("{sig} needs an array payload"))),
    }
}

fn short_array(sig: &Signature, len: usize, size: usize) -> MpiError {
    MpiError::ArgError(format!(
        "{sig}: array of length {len} is shorter than the world size {size}"
    ))
}

/// Run `f(rank)` for every rank of `world` concurrently — one dedicated
/// thread per rank from the shared simulator thread cache (reused across
/// worlds instead of respawned) — and collect the per-rank results in
/// rank order.
///
/// Ranks may block in collectives/recv; the cache guarantees all of
/// them run simultaneously, which the matching engine's liveness census
/// assumes.
pub fn run_ranks<R, F>(world: &Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parcoach_pool::thread_cache().run_map(world.size(), f)
}

/// Convenience: the signature of a data collective from IR-level facts.
pub fn data_signature(
    kind: parcoach_front::ast::CollectiveKind,
    reduce_op: Option<ReduceOp>,
    root: Option<usize>,
    ty: Option<MpiType>,
) -> Signature {
    Signature::collective(kind.into(), reduce_op, root, ty)
}
