//! The simulated MPI world: ranks, communicators, the collective
//! matching engine, thread-level enforcement, point-to-point messaging,
//! deadlock detection and the PARCOACH `CC` control collective.
//!
//! ## Matching model
//!
//! **Per communicator**, collectives match in per-rank program order:
//! the n-th collective call of every member of a communicator forms
//! instance `n` of that communicator. The first arriver fixes the
//! instance's [`Signature`]; any member arriving with a different
//! signature is a **collective mismatch** and aborts the world with both
//! signatures and ranks — this is what MUST's tree-based matcher
//! reports, and what the PARCOACH `CC` turns into a *pre*-collective
//! error with source lines. Collectives on different communicators have
//! disjoint matching spaces and never see each other.
//!
//! Communicators are created collectively: handle `0` is
//! `MPI_COMM_WORLD`; [`World::comm_split`] and [`World::comm_dup`]
//! allocate new handles shared by all members. Point-to-point messages
//! also carry their communicator; ranks and roots passed to
//! communicator-scoped operations are *local* ranks within that
//! communicator.
//!
//! ## Non-blocking point-to-point
//!
//! [`World::isend`] buffers its message immediately (eager protocol,
//! like the blocking [`World::send_on`]) and returns a **request**
//! handle that completes trivially at [`World::wait`]. [`World::irecv`]
//! registers a receive post — optionally wildcarded with
//! `MPI_ANY_SOURCE` / `MPI_ANY_TAG` — without blocking; the matching
//! message is consumed at the `wait`. Wildcard matching is
//! **deterministic**: among all buffered candidates the lowest sender
//! rank wins, then the earliest arrival.
//!
//! ## Deadlock detection
//!
//! A real MPI run with mismatched collective *counts* hangs. Here every
//! blocking wait participates in a liveness census (see
//! [`crate::census`]): when **all** ranks are blocked
//! (collective/recv/wait) or finished and nothing can complete on any
//! communicator, the world aborts with a per-rank activity dump. Before
//! declaring a generic deadlock the census builds a **wait-for graph**
//! over the blocked receives and waits (an edge rank → r when rank
//! awaits a message only r could send); a genuine cycle is reported as
//! [`MpiError::WaitCycle`] naming the ranks on it. A rank finishing
//! while others wait in a collective aborts immediately.
//!
//! ## Engines
//!
//! Two interchangeable matching engines implement this contract and
//! must produce byte-identical reports:
//!
//! * the **sharded** engine (default, [`crate::sharded`]): one matching
//!   space per communicator and one mailbox shard per (communicator,
//!   destination), each with its own lock and condvar, so disjoint
//!   traffic never contends; one small world lock covers only the
//!   liveness census;
//! * the **legacy** engine ([`crate::legacy`], via
//!   [`MpiConfig::legacy_world_lock`]): the original single
//!   world-lock schedule, kept as the ablation baseline and fuzz
//!   cross-check.

use crate::error::MpiError;
use crate::legacy::LegacyWorld;
use crate::sharded::ShardedWorld;
use crate::signature::{CollectiveOp, Signature};
use crate::value::{reduce_array, reduce_scalar, MpiType, MpiValue};
use parcoach_front::ast::{ReduceOp, ThreadLevel, ANY_SOURCE, ANY_TAG};
use std::sync::Arc;
use std::time::Duration;

/// The handle of `MPI_COMM_WORLD`.
pub const COMM_WORLD: usize = 0;

/// World configuration.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub world_size: usize,
    /// The highest thread level this "implementation" grants.
    pub max_provided: ThreadLevel,
    /// Blocking-operation timeout (deadlock fallback).
    pub op_timeout: Duration,
    /// Run on the legacy single-world-lock engine instead of the
    /// sharded one (ablation baseline / cross-check).
    pub legacy_world_lock: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            world_size: 2,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_secs(10),
            legacy_world_lock: false,
        }
    }
}

/// One buffered point-to-point message.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    /// Communicator the message travels on.
    pub(crate) comm: usize,
    /// Sender's local rank within `comm`.
    pub(crate) src: usize,
    pub(crate) tag: i64,
    pub(crate) value: MpiValue,
}

/// One collective instance (the n-th collective of a communicator).
pub(crate) struct Instance {
    pub(crate) signature: Option<Signature>,
    pub(crate) first_rank: usize,
    pub(crate) payloads: Vec<Option<MpiValue>>,
    pub(crate) arrived_count: usize,
    pub(crate) results: Option<Vec<MpiValue>>,
    pub(crate) collected: Vec<bool>,
    pub(crate) collected_count: usize,
}

impl Instance {
    pub(crate) fn new(size: usize) -> Instance {
        Instance {
            signature: None,
            first_rank: 0,
            payloads: vec![None; size],
            arrived_count: 0,
            results: None,
            collected: vec![false; size],
            collected_count: 0,
        }
    }
}

/// State of one non-blocking request.
#[derive(Debug, Clone)]
pub(crate) enum RequestState {
    /// A buffered isend: complete at post time, `wait` just retires it.
    SendDone,
    /// An irecv post awaiting a matching message.
    RecvPending {
        /// Communicator the post is on.
        comm: usize,
        /// Pinned local source (None = `MPI_ANY_SOURCE`).
        src: Option<usize>,
        /// Pinned tag (None = `MPI_ANY_TAG`).
        tag: Option<i64>,
    },
    /// Completed and retired by a wait; further waits are errors.
    Retired,
}

/// One non-blocking request, owned by the rank that posted it.
#[derive(Debug, Clone)]
pub(crate) struct Request {
    pub(crate) owner: usize,
    pub(crate) state: RequestState,
}

/// Index of the buffered message a (possibly wildcarded) receive should
/// take: lowest sender rank first, then earliest arrival — the
/// deterministic wildcard tie-break.
pub(crate) fn matching_message(
    mailbox: &[Message],
    comm: usize,
    src: Option<usize>,
    tag: Option<i64>,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, m) in mailbox.iter().enumerate() {
        if m.comm != comm {
            continue;
        }
        if src.is_some_and(|s| m.src != s) {
            continue;
        }
        if tag.is_some_and(|t| m.tag != t) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if m.src < mailbox[b].src => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Decode a sentinel-encoded (source, tag) receive key: `ANY_SOURCE` /
/// `ANY_TAG` become wildcards, other negative values are errors.
pub(crate) fn decode_recv_key(
    src: i64,
    tag: i64,
) -> Result<(Option<usize>, Option<i64>), MpiError> {
    let s = match src {
        ANY_SOURCE => None,
        s if s < 0 => {
            return Err(MpiError::ArgError(format!(
                "receive source {s} is neither a rank nor MPI_ANY_SOURCE"
            )))
        }
        s => Some(s as usize),
    };
    let t = match tag {
        ANY_TAG => None,
        t if t < 0 => {
            return Err(MpiError::ArgError(format!(
                "receive tag {t} is neither a tag nor MPI_ANY_TAG"
            )))
        }
        t => Some(t),
    };
    Ok((s, t))
}

/// The thread-level enforcement shared by both engines: `Some(detail)`
/// when this MPI entry violates the provided level. `concurrent` = the
/// rank already has another MPI call in flight; `is_initial_thread` =
/// the caller is the process's initial thread.
pub(crate) fn thread_level_violation(
    provided: ThreadLevel,
    concurrent: bool,
    is_initial_thread: bool,
) -> Option<String> {
    match provided {
        ThreadLevel::Multiple => None,
        ThreadLevel::Serialized => concurrent
            .then(|| "two threads of the same process are inside MPI simultaneously".to_string()),
        ThreadLevel::Funneled => {
            if !is_initial_thread {
                Some("an MPI call was made by a thread other than the main thread".into())
            } else if concurrent {
                Some("concurrent MPI calls under MPI_THREAD_FUNNELED".into())
            } else {
                None
            }
        }
        ThreadLevel::Single => {
            if !is_initial_thread {
                Some("an MPI call was made from a spawned thread under MPI_THREAD_SINGLE".into())
            } else if concurrent {
                Some("concurrent MPI calls under MPI_THREAD_SINGLE".into())
            } else {
                None
            }
        }
    }
}

/// The simulated MPI world. Shared by all rank threads via `Arc`.
/// A thin facade over the selected matching engine.
pub struct World {
    cfg: MpiConfig,
    imp: Engine,
}

enum Engine {
    Legacy(LegacyWorld),
    Sharded(ShardedWorld),
}

/// Result of the `CC` control collective: the per-(local-)rank colors.
#[derive(Debug, Clone, PartialEq)]
pub struct CcOutcome {
    /// Color communicated by each member, in local rank order.
    pub colors: Vec<u32>,
}

impl CcOutcome {
    /// True when all members communicated the same color.
    pub fn unanimous(&self) -> bool {
        self.colors.windows(2).all(|w| w[0] == w[1])
    }

    /// Minimum and maximum color (the paper's `(min, max)` all-reduce).
    pub fn min_max(&self) -> (u32, u32) {
        let min = self.colors.iter().copied().min().unwrap_or(0);
        let max = self.colors.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

/// One communicator's p2p census row: (handle, total sent, total
/// received).
pub type P2pCensusRow = (usize, u64, u64);

impl World {
    /// Create a world of `cfg.world_size` ranks.
    pub fn new(cfg: MpiConfig) -> Arc<World> {
        let cfg = MpiConfig {
            world_size: cfg.world_size.max(1),
            ..cfg
        };
        let imp = if cfg.legacy_world_lock {
            Engine::Legacy(LegacyWorld::new(cfg.clone()))
        } else {
            Engine::Sharded(ShardedWorld::new(cfg.clone()))
        };
        Arc::new(World { cfg, imp })
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.cfg.world_size
    }

    /// Number of members of a communicator (None for a bad handle).
    pub fn comm_size(&self, comm: usize) -> Option<usize> {
        match &self.imp {
            Engine::Legacy(w) => w.comm_size(comm),
            Engine::Sharded(w) => w.comm_size(comm),
        }
    }

    /// The local rank of `global` within `comm` (None when not a
    /// member or the handle is bad).
    pub fn comm_rank(&self, global: usize, comm: usize) -> Option<usize> {
        match &self.imp {
            Engine::Legacy(w) => w.comm_rank(comm, global),
            Engine::Sharded(w) => w.comm_rank(comm, global),
        }
    }

    /// `MPI_Init(_thread)`: returns the provided level
    /// (`min(required, max_provided)`).
    pub fn init(&self, rank: usize, required: ThreadLevel) -> ThreadLevel {
        match &self.imp {
            Engine::Legacy(w) => w.init(rank, required),
            Engine::Sharded(w) => w.init(rank, required),
        }
    }

    /// The currently provided thread level (`Multiple` before init —
    /// enforcement only starts once the program declared its level).
    pub fn provided(&self) -> ThreadLevel {
        match &self.imp {
            Engine::Legacy(w) => w.provided(),
            Engine::Sharded(w) => w.provided(),
        }
    }

    /// Abort the world: all blocked and future operations fail with
    /// [`MpiError::Aborted`] carrying `reason`. The first abort wins.
    pub fn abort(&self, reason: MpiError) {
        match &self.imp {
            Engine::Legacy(w) => w.abort(reason),
            Engine::Sharded(w) => w.abort(reason),
        }
    }

    /// The abort reason, if the world aborted.
    pub fn abort_reason(&self) -> Option<MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.abort_reason(),
            Engine::Sharded(w) => w.abort_reason(),
        }
    }

    /// Register one interpreter thread that may issue MPI calls for
    /// `rank` (the rank's main thread, or a parallel-region member).
    /// Pairs with [`World::thread_departed`]; the counts feed the
    /// liveness census so it can prove deadlocks under
    /// `MPI_THREAD_MULTIPLE` instead of waiting out the op timeout.
    pub fn thread_started(&self, rank: usize) {
        match &self.imp {
            Engine::Legacy(w) => w.thread_started(rank),
            Engine::Sharded(w) => w.thread_started(rank),
        }
    }

    /// A registered thread can no longer issue MPI calls for `rank`
    /// (region member reached the join, or the main thread suspended at
    /// a fork). Wakes blocked peers: their census condition may have
    /// just become provable.
    pub fn thread_departed(&self, rank: usize) {
        match &self.imp {
            Engine::Legacy(w) => w.thread_departed(rank),
            Engine::Sharded(w) => w.thread_departed(rank),
        }
    }

    /// Mark a rank's program as terminated. Detects "finished while
    /// others wait in a collective".
    pub fn finish_rank(&self, rank: usize) {
        match &self.imp {
            Engine::Legacy(w) => w.finish_rank(rank),
            Engine::Sharded(w) => w.finish_rank(rank),
        }
    }

    fn enter_collective(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.enter_collective(rank, comm, sig, payload, is_initial_thread),
            Engine::Sharded(w) => w.enter_collective(rank, comm, sig, payload, is_initial_thread),
        }
    }

    /// The PARCOACH `CC` control collective on `MPI_COMM_WORLD`.
    pub fn control_cc(
        &self,
        rank: usize,
        color: u32,
        is_initial_thread: bool,
    ) -> Result<CcOutcome, MpiError> {
        self.control_cc_on(rank, COMM_WORLD, color, is_initial_thread)
    }

    /// The PARCOACH `CC` control collective on a communicator:
    /// all-reduce the color among its members and return every member's
    /// color. Running the CC on the *guarded collective's* communicator
    /// keeps unrelated communicators out of each other's checks.
    pub fn control_cc_on(
        &self,
        rank: usize,
        comm: usize,
        color: u32,
        is_initial_thread: bool,
    ) -> Result<CcOutcome, MpiError> {
        let out = self.enter_collective(
            rank,
            comm,
            Signature::control_cc(),
            Some(MpiValue::Int(color as i64)),
            is_initial_thread,
        )?;
        match out {
            MpiValue::ArrayInt(colors) => Ok(CcOutcome {
                colors: colors.into_iter().map(|c| c as u32).collect(),
            }),
            other => panic!("CC result must be an int array, got {:?}", other.ty()),
        }
    }

    /// `MPI_Finalize` — synchronizing pseudo-collective on the world.
    pub fn finalize(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        self.enter_collective(
            rank,
            COMM_WORLD,
            Signature::finalize(),
            None,
            is_initial_thread,
        )
        .map(|_| ())
    }

    /// Execute a data collective on `MPI_COMM_WORLD`.
    pub fn collective(
        &self,
        rank: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.collective_on(rank, COMM_WORLD, sig, payload, is_initial_thread)
    }

    /// Execute a data collective on a communicator. `sig` must describe
    /// the operation (kind/op/root/type) with the root as a *local*
    /// rank; `payload` carries this rank's contribution. Returns this
    /// rank's result value.
    pub fn collective_on(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        if let Some(root) = sig.root {
            let size = self.comm_size(comm).unwrap_or(0);
            if root >= size {
                let err = MpiError::ArgError(format!(
                    "root {root} out of range for communicator size {size}"
                ));
                self.abort(err.clone());
                return Err(err);
            }
        }
        self.enter_collective(rank, comm, sig, payload, is_initial_thread)
    }

    /// `MPI_Comm_split(parent, color, key)` — collective over the
    /// parent communicator. Members with equal `color` form a new
    /// communicator, ordered by (`key`, parent-global rank); the new
    /// handle is returned to each member. Colors must be non-negative.
    pub fn comm_split(
        &self,
        rank: usize,
        parent: usize,
        color: i64,
        key: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        if color < 0 {
            let err = MpiError::ArgError(format!("MPI_Comm_split color must be >= 0, got {color}"));
            self.abort(err.clone());
            return Err(err);
        }
        let out = self.enter_collective(
            rank,
            parent,
            Signature::comm_split(),
            Some(MpiValue::ArrayInt(vec![color, key])),
            is_initial_thread,
        )?;
        Ok(out.as_int() as usize)
    }

    /// `MPI_Comm_dup(comm)` — collective over `comm`; returns a new
    /// handle with the same members but a fresh matching space.
    pub fn comm_dup(
        &self,
        rank: usize,
        comm: usize,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        let out =
            self.enter_collective(rank, comm, Signature::comm_dup(), None, is_initial_thread)?;
        Ok(out.as_int() as usize)
    }

    /// Point-to-point epoch census (the PARCOACH `CC` protocol extended
    /// to p2p): a world-synchronizing control collective returning, for
    /// every communicator, the total messages sent and received on it.
    /// Placed by the instrumentation immediately before `MPI_Finalize`,
    /// where all buffered traffic must have been consumed — the epoch's
    /// final synchronization point. The per-communicator counters reset
    /// after the census (the epoch ends).
    pub fn p2p_census(
        &self,
        rank: usize,
        is_initial_thread: bool,
    ) -> Result<Vec<P2pCensusRow>, MpiError> {
        let out = self.enter_collective(
            rank,
            COMM_WORLD,
            Signature::p2p_census(),
            None,
            is_initial_thread,
        )?;
        let MpiValue::ArrayInt(flat) = out else {
            panic!("census result must be an int array, got {:?}", out.ty());
        };
        Ok(flat
            .chunks(3)
            .map(|c| (c[0] as usize, c[1] as u64, c[2] as u64))
            .collect())
    }

    /// Buffered (non-blocking) send on a communicator; `dest` is the
    /// destination's local rank within `comm`.
    pub fn send_on(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.send_on(rank, comm, dest, tag, value, is_initial_thread),
            Engine::Sharded(w) => w.send_on(rank, comm, dest, tag, value, is_initial_thread),
        }
    }

    /// `MPI_Isend`: buffered send on a communicator (the message is
    /// delivered immediately, exactly like [`World::send_on`] — eager
    /// protocol); returns a request handle that completes trivially at
    /// [`World::wait`].
    pub fn isend(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.isend(rank, comm, dest, tag, value, is_initial_thread),
            Engine::Sharded(w) => w.isend(rank, comm, dest, tag, value, is_initial_thread),
        }
    }

    /// `MPI_Irecv`: non-blocking receive post on a communicator. `src`
    /// may be [`parcoach_front::ast::ANY_SOURCE`] and `tag` may be
    /// [`parcoach_front::ast::ANY_TAG`]; otherwise both must be
    /// non-negative (and `src` a member of `comm`). Never blocks — the
    /// matching message is consumed by [`World::wait`].
    pub fn irecv(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.irecv(rank, comm, src, tag, is_initial_thread),
            Engine::Sharded(w) => w.irecv(rank, comm, src, tag, is_initial_thread),
        }
    }

    /// `MPI_Wait`: block until `request` completes. Send requests
    /// retire immediately (returning `Int(0)`); receive requests block
    /// until a matching message is buffered, consume it (deterministic
    /// wildcard tie-break: lowest sender rank first, then earliest
    /// arrival) and return its value. Waiting twice on one request, or
    /// on another rank's request, is an argument error.
    pub fn wait(
        &self,
        rank: usize,
        request: usize,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.wait(rank, request, is_initial_thread),
            Engine::Sharded(w) => w.wait(rank, request, is_initial_thread),
        }
    }

    /// Buffered send on `MPI_COMM_WORLD`.
    pub fn send(
        &self,
        rank: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        self.send_on(rank, COMM_WORLD, dest, tag, value, is_initial_thread)
    }

    /// Blocking receive of a message from local rank `src` with `tag`
    /// on a communicator. `src` accepts [`parcoach_front::ast::ANY_SOURCE`]
    /// and `tag` accepts [`parcoach_front::ast::ANY_TAG`] — the same
    /// wildcards (and deterministic tie-break) as [`World::irecv`].
    pub fn recv_on(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        match &self.imp {
            Engine::Legacy(w) => w.recv_on(rank, comm, src, tag, is_initial_thread),
            Engine::Sharded(w) => w.recv_on(rank, comm, src, tag, is_initial_thread),
        }
    }

    /// Blocking receive on `MPI_COMM_WORLD`.
    pub fn recv(
        &self,
        rank: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.recv_on(rank, COMM_WORLD, src, tag, is_initial_thread)
    }
}

pub(crate) fn bad_comm(comm: usize) -> MpiError {
    MpiError::ArgError(format!("invalid communicator handle #{comm}"))
}

pub(crate) fn not_member(rank: usize, comm: usize) -> MpiError {
    MpiError::ArgError(format!(
        "rank {rank} is not a member of communicator #{comm}"
    ))
}

/// Render an optional receive-key field as its value or `ANY`.
pub(crate) fn value_or_any(v: Option<impl std::fmt::Display>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "ANY".into())
}

/// Suffix for activity/error strings; empty for the world.
pub(crate) fn comm_suffix(comm: usize) -> String {
    if comm == COMM_WORLD {
        String::new()
    } else {
        format!(" on comm #{comm}")
    }
}

/// Compute per-(local-)rank results once all payloads arrived.
pub(crate) fn compute_results(
    sig: Signature,
    payloads: &[Option<MpiValue>],
    size: usize,
) -> Result<Vec<MpiValue>, MpiError> {
    let payloads: Vec<&MpiValue> = match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => Vec::new(),
        _ => {
            let mut v = Vec::with_capacity(size);
            for (r, p) in payloads.iter().enumerate() {
                match p {
                    Some(x) => v.push(x),
                    None => {
                        return Err(MpiError::ArgError(format!(
                            "rank {r} entered {sig} without a payload"
                        )))
                    }
                }
            }
            v
        }
    };
    let dummy = MpiValue::Int(0);
    Ok(match sig.op {
        CollectiveOp::Barrier | CollectiveOp::Finalize => vec![dummy; size],
        CollectiveOp::CommSplit | CollectiveOp::CommDup | CollectiveOp::P2pCensus => {
            unreachable!("handled by the caller with world access")
        }
        CollectiveOp::ControlCc => {
            let colors: Vec<i64> = payloads.iter().map(|p| p.as_int()).collect();
            vec![MpiValue::ArrayInt(colors); size]
        }
        CollectiveOp::Bcast => {
            let root = sig.root.expect("bcast has root");
            vec![payloads[root].clone(); size]
        }
        CollectiveOp::Allreduce => {
            let op = sig.reduce_op.expect("allreduce has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            vec![acc; size]
        }
        CollectiveOp::Reduce => {
            let op = sig.reduce_op.expect("reduce has op");
            let root = sig.root.expect("reduce has root");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_scalar(op, &acc, p);
            }
            // Root receives the reduction; other ranks get their own
            // contribution back (documented simulator semantics).
            (0..size)
                .map(|r| {
                    if r == root {
                        acc.clone()
                    } else {
                        payloads[r].clone()
                    }
                })
                .collect()
        }
        CollectiveOp::Scan => {
            let op = sig.reduce_op.expect("scan has op");
            let mut acc: Option<MpiValue> = None;
            payloads
                .iter()
                .map(|p| {
                    acc = Some(match &acc {
                        None => (*p).clone(),
                        Some(a) => reduce_scalar(op, a, p),
                    });
                    acc.clone().expect("just set")
                })
                .collect()
        }
        CollectiveOp::Gather => {
            let root = sig.root.expect("gather has root");
            let gathered = gather_array(&payloads)?;
            (0..size)
                .map(|r| {
                    if r == root {
                        gathered.clone()
                    } else {
                        empty_like(&gathered)
                    }
                })
                .collect()
        }
        CollectiveOp::Allgather => {
            let gathered = gather_array(&payloads)?;
            vec![gathered; size]
        }
        CollectiveOp::Scatter => {
            let root = sig.root.expect("scatter has root");
            scatter_elems(payloads[root], size, &sig)?
        }
        CollectiveOp::Alltoall => {
            // Rank r receives element r of every rank's array.
            let mut out = Vec::with_capacity(size);
            for r in 0..size {
                match payloads[0] {
                    MpiValue::ArrayInt(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayInt(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayInt(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayInt(row));
                    }
                    MpiValue::ArrayFloat(_) => {
                        let mut row = Vec::with_capacity(size);
                        for p in &payloads {
                            match p {
                                MpiValue::ArrayFloat(a) if a.len() >= size => row.push(a[r]),
                                MpiValue::ArrayFloat(a) => {
                                    return Err(short_array(&sig, a.len(), size))
                                }
                                _ => unreachable!("type-matched by signature"),
                            }
                        }
                        out.push(MpiValue::ArrayFloat(row));
                    }
                    _ => return Err(MpiError::ArgError("alltoall needs arrays".into())),
                }
            }
            out
        }
        CollectiveOp::ReduceScatter => {
            let op = sig.reduce_op.expect("reduce_scatter has op");
            let mut acc = payloads[0].clone();
            for p in &payloads[1..] {
                acc = reduce_array(op, &acc, p);
            }
            scatter_elems(&acc, size, &sig)?
        }
    })
}

fn gather_array(payloads: &[&MpiValue]) -> Result<MpiValue, MpiError> {
    match payloads[0] {
        MpiValue::Int(_) => Ok(MpiValue::ArrayInt(
            payloads.iter().map(|p| p.as_int()).collect(),
        )),
        MpiValue::Float(_) => Ok(MpiValue::ArrayFloat(
            payloads.iter().map(|p| p.as_float()).collect(),
        )),
        _ => Err(MpiError::ArgError(
            "gather/allgather needs scalar contributions".into(),
        )),
    }
}

fn empty_like(v: &MpiValue) -> MpiValue {
    match v {
        MpiValue::ArrayInt(_) => MpiValue::ArrayInt(Vec::new()),
        MpiValue::ArrayFloat(_) => MpiValue::ArrayFloat(Vec::new()),
        _ => MpiValue::Int(0),
    }
}

fn scatter_elems(src: &MpiValue, size: usize, sig: &Signature) -> Result<Vec<MpiValue>, MpiError> {
    match src {
        MpiValue::ArrayInt(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Int(x)).collect())
        }
        MpiValue::ArrayFloat(a) => {
            if a.len() < size {
                return Err(short_array(sig, a.len(), size));
            }
            Ok(a.iter().take(size).map(|&x| MpiValue::Float(x)).collect())
        }
        _ => Err(MpiError::ArgError(format!("{sig} needs an array payload"))),
    }
}

fn short_array(sig: &Signature, len: usize, size: usize) -> MpiError {
    MpiError::ArgError(format!(
        "{sig}: array of length {len} is shorter than the communicator size {size}"
    ))
}

/// Run `f(rank)` for every rank of `world` concurrently — one dedicated
/// thread per rank from the shared simulator thread cache (reused across
/// worlds instead of respawned) — and collect the per-rank results in
/// rank order.
///
/// Ranks may block in collectives/recv; the cache guarantees all of
/// them run simultaneously, which the matching engine's liveness census
/// assumes.
pub fn run_ranks<R, F>(world: &Arc<World>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parcoach_pool::thread_cache().run_map(world.size(), f)
}

/// Convenience: the signature of a data collective from IR-level facts.
pub fn data_signature(
    kind: parcoach_front::ast::CollectiveKind,
    reduce_op: Option<ReduceOp>,
    root: Option<usize>,
    ty: Option<MpiType>,
) -> Signature {
    Signature::collective(kind.into(), reduce_op, root, ty)
}
