//! MPI payload values and reduction arithmetic.

use parcoach_front::ast::ReduceOp;
use std::fmt;

/// A value crossing the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiValue {
    /// Scalar integer.
    Int(i64),
    /// Scalar float.
    Float(f64),
    /// Integer array.
    ArrayInt(Vec<i64>),
    /// Float array.
    ArrayFloat(Vec<f64>),
}

/// Type tag used for signature matching (MUST-style datatype check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiType {
    /// `Int`
    Int,
    /// `Float`
    Float,
    /// `ArrayInt`
    ArrayInt,
    /// `ArrayFloat`
    ArrayFloat,
}

impl fmt::Display for MpiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiType::Int => write!(f, "int"),
            MpiType::Float => write!(f, "float"),
            MpiType::ArrayInt => write!(f, "int[]"),
            MpiType::ArrayFloat => write!(f, "float[]"),
        }
    }
}

impl MpiValue {
    /// The value's type tag.
    pub fn ty(&self) -> MpiType {
        match self {
            MpiValue::Int(_) => MpiType::Int,
            MpiValue::Float(_) => MpiType::Float,
            MpiValue::ArrayInt(_) => MpiType::ArrayInt,
            MpiValue::ArrayFloat(_) => MpiType::ArrayFloat,
        }
    }

    /// Integer content (panics on type confusion — signatures are
    /// verified before payload math).
    pub fn as_int(&self) -> i64 {
        match self {
            MpiValue::Int(v) => *v,
            other => panic!("expected int payload, got {:?}", other.ty()),
        }
    }

    /// Float content.
    pub fn as_float(&self) -> f64 {
        match self {
            MpiValue::Float(v) => *v,
            other => panic!("expected float payload, got {:?}", other.ty()),
        }
    }
}

/// Apply a reduction operator to two scalars of the same type.
pub fn reduce_scalar(op: ReduceOp, a: &MpiValue, b: &MpiValue) -> MpiValue {
    match (a, b) {
        (MpiValue::Int(x), MpiValue::Int(y)) => MpiValue::Int(reduce_i64(op, *x, *y)),
        (MpiValue::Float(x), MpiValue::Float(y)) => MpiValue::Float(reduce_f64(op, *x, *y)),
        _ => panic!("reduce on mismatched types {:?} / {:?}", a.ty(), b.ty()),
    }
}

/// Reduce two i64.
pub fn reduce_i64(op: ReduceOp, a: i64, b: i64) -> i64 {
    match op {
        ReduceOp::Sum => a.wrapping_add(b),
        ReduceOp::Prod => a.wrapping_mul(b),
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
        ReduceOp::Land => ((a != 0) && (b != 0)) as i64,
        ReduceOp::Lor => ((a != 0) || (b != 0)) as i64,
    }
}

/// Reduce two f64 (logical ops treat non-zero as true).
pub fn reduce_f64(op: ReduceOp, a: f64, b: f64) -> f64 {
    match op {
        ReduceOp::Sum => a + b,
        ReduceOp::Prod => a * b,
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
        ReduceOp::Land => ((a != 0.0) && (b != 0.0)) as i64 as f64,
        ReduceOp::Lor => ((a != 0.0) || (b != 0.0)) as i64 as f64,
    }
}

/// Element-wise reduction of two arrays (for `MPI_Reduce_scatter`).
pub fn reduce_array(op: ReduceOp, a: &MpiValue, b: &MpiValue) -> MpiValue {
    match (a, b) {
        (MpiValue::ArrayInt(x), MpiValue::ArrayInt(y)) => MpiValue::ArrayInt(
            x.iter()
                .zip(y.iter())
                .map(|(p, q)| reduce_i64(op, *p, *q))
                .collect(),
        ),
        (MpiValue::ArrayFloat(x), MpiValue::ArrayFloat(y)) => MpiValue::ArrayFloat(
            x.iter()
                .zip(y.iter())
                .map(|(p, q)| reduce_f64(op, *p, *q))
                .collect(),
        ),
        _ => panic!("array reduce on mismatched types"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reduce_ops() {
        assert_eq!(reduce_i64(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(reduce_i64(ReduceOp::Prod, 3, 4), 12);
        assert_eq!(reduce_i64(ReduceOp::Min, 3, 4), 3);
        assert_eq!(reduce_i64(ReduceOp::Max, 3, 4), 4);
        assert_eq!(reduce_i64(ReduceOp::Land, 1, 0), 0);
        assert_eq!(reduce_i64(ReduceOp::Lor, 1, 0), 1);
        assert_eq!(reduce_f64(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(reduce_f64(ReduceOp::Max, 1.5, 2.5), 2.5);
    }

    #[test]
    fn value_reduce_dispatch() {
        let r = reduce_scalar(ReduceOp::Sum, &MpiValue::Int(1), &MpiValue::Int(2));
        assert_eq!(r, MpiValue::Int(3));
        let r = reduce_scalar(ReduceOp::Min, &MpiValue::Float(1.0), &MpiValue::Float(-1.0));
        assert_eq!(r, MpiValue::Float(-1.0));
    }

    #[test]
    fn array_reduce_elementwise() {
        let a = MpiValue::ArrayInt(vec![1, 5, 3]);
        let b = MpiValue::ArrayInt(vec![4, 2, 6]);
        assert_eq!(
            reduce_array(ReduceOp::Max, &a, &b),
            MpiValue::ArrayInt(vec![4, 5, 6])
        );
    }

    #[test]
    fn type_tags() {
        assert_eq!(MpiValue::Int(1).ty(), MpiType::Int);
        assert_eq!(MpiValue::ArrayFloat(vec![]).ty(), MpiType::ArrayFloat);
        assert_eq!(MpiType::ArrayInt.to_string(), "int[]");
    }
}
