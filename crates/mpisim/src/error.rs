//! MPI substrate errors — the runtime manifestations of the bugs the
//! paper's checks exist to catch (plus plain argument errors).

use crate::signature::Signature;
use parcoach_front::ast::ThreadLevel;
use std::fmt;

/// What each rank was doing when a deadlock was declared.
#[derive(Debug, Clone, PartialEq)]
pub enum RankActivity {
    /// Executing user code.
    Running,
    /// Blocked in collective number `seq` (0-based per-communicator
    /// order), described by its signature.
    InCollective {
        /// Per-communicator sequence number.
        seq: u64,
        /// What it is waiting in.
        what: String,
    },
    /// Blocked in `MPI_Recv`.
    InRecv {
        /// Communicator handle the receive is posted on (0 = world).
        comm: usize,
        /// Source rank awaited (local to `comm`; None = `MPI_ANY_SOURCE`).
        src: Option<usize>,
        /// Tag awaited (None = `MPI_ANY_TAG`).
        tag: Option<i64>,
    },
    /// Blocked in `MPI_Wait`/`MPI_Waitall` on a receive request.
    InWait {
        /// Request handle being waited on.
        request: usize,
        /// Communicator handle the receive was posted on (0 = world).
        comm: usize,
        /// Source rank awaited (local to `comm`; None = `MPI_ANY_SOURCE`).
        src: Option<usize>,
        /// Tag awaited (None = `MPI_ANY_TAG`).
        tag: Option<i64>,
    },
    /// The rank's program has terminated.
    Finished,
}

/// Render an optional source/tag as its value or the wildcard name.
fn opt_field(f: &mut fmt::Formatter<'_>, name: &str, v: Option<impl fmt::Display>) -> fmt::Result {
    match v {
        Some(x) => write!(f, "{name}={x}"),
        None => write!(f, "{name}=ANY"),
    }
}

impl fmt::Display for RankActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankActivity::Running => write!(f, "running"),
            RankActivity::InCollective { seq, what } => {
                write!(f, "blocked in collective #{seq} ({what})")
            }
            RankActivity::InRecv { comm, src, tag } => {
                write!(f, "blocked in MPI_Recv(")?;
                opt_field(f, "src", *src)?;
                write!(f, ", ")?;
                opt_field(f, "tag", *tag)?;
                write!(f, ")")?;
                if *comm != 0 {
                    write!(f, " on comm #{comm}")?;
                }
                Ok(())
            }
            RankActivity::InWait {
                request,
                comm,
                src,
                tag,
            } => {
                write!(f, "blocked in MPI_Wait(req #{request}: ")?;
                opt_field(f, "src", *src)?;
                write!(f, ", ")?;
                opt_field(f, "tag", *tag)?;
                write!(f, ")")?;
                if *comm != 0 {
                    write!(f, " on comm #{comm}")?;
                }
                Ok(())
            }
            RankActivity::Finished => write!(f, "finished"),
        }
    }
}

/// Errors surfaced by the MPI substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiError {
    /// Two ranks issued different collectives as their n-th operation
    /// on one communicator (MUST-style signature mismatch).
    CollectiveMismatch {
        /// Communicator handle the mismatch happened on (0 = world).
        comm: usize,
        /// Per-communicator collective index at which they diverged.
        seq: u64,
        /// Signature already registered.
        expected: Signature,
        /// Rank that registered it.
        expected_rank: usize,
        /// The incompatible signature.
        got: Signature,
        /// Rank that brought it.
        got_rank: usize,
    },
    /// A rank finished while others still wait in a collective.
    RankFinishedEarly {
        /// The rank that left.
        finished_rank: usize,
        /// Activities of all ranks at detection time.
        states: Vec<RankActivity>,
    },
    /// All live ranks are blocked and no collective can complete.
    Deadlock {
        /// Activities of all ranks.
        states: Vec<RankActivity>,
    },
    /// The wait-for graph (built over blocked receives and waits when
    /// the liveness census fires) contains a genuine cycle: every rank
    /// on it waits for a message only the next rank on the cycle could
    /// send, and that rank is itself blocked.
    WaitCycle {
        /// Global ranks on the cycle, in wait-for order (the last
        /// waits for the first).
        cycle: Vec<usize>,
        /// Activities of all ranks.
        states: Vec<RankActivity>,
    },
    /// A blocking operation exceeded the configured timeout.
    Timeout {
        /// Description of the stuck operation.
        what: String,
        /// Activities of all ranks at the timeout.
        states: Vec<RankActivity>,
    },
    /// The requested MPI thread level was violated (e.g. concurrent MPI
    /// calls under `MPI_THREAD_SERIALIZED`).
    ThreadLevelViolation {
        /// Level granted at init.
        provided: ThreadLevel,
        /// Description of the violation.
        detail: String,
    },
    /// Malformed arguments (root out of range, short scatter array, …).
    ArgError(String),
    /// The world was aborted (by a failed dynamic check or another
    /// rank's error); carries the original reason.
    Aborted(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::CollectiveMismatch {
                comm,
                seq,
                expected,
                expected_rank,
                got,
                got_rank,
            } => {
                write!(
                    f,
                    "collective mismatch at operation #{seq}: rank {expected_rank} \
                     entered {expected} but rank {got_rank} entered {got}"
                )?;
                if *comm != 0 {
                    write!(f, " (communicator #{comm})")?;
                }
                Ok(())
            }
            MpiError::RankFinishedEarly {
                finished_rank,
                states,
            } => {
                write!(
                    f,
                    "rank {finished_rank} finished while collectives are pending:"
                )?;
                for (r, s) in states.iter().enumerate() {
                    write!(f, " [rank {r}: {s}]")?;
                }
                Ok(())
            }
            MpiError::Deadlock { states } => {
                write!(f, "deadlock: all ranks blocked:")?;
                for (r, s) in states.iter().enumerate() {
                    write!(f, " [rank {r}: {s}]")?;
                }
                Ok(())
            }
            MpiError::WaitCycle { cycle, states } => {
                write!(f, "wait-for cycle:")?;
                for (i, r) in cycle.iter().enumerate() {
                    let next = cycle[(i + 1) % cycle.len()];
                    write!(f, " rank {r} waits on rank {next};")?;
                }
                for (r, s) in states.iter().enumerate() {
                    write!(f, " [rank {r}: {s}]")?;
                }
                Ok(())
            }
            MpiError::Timeout { what, states } => {
                write!(f, "timeout in {what}:")?;
                for (r, s) in states.iter().enumerate() {
                    write!(f, " [rank {r}: {s}]")?;
                }
                Ok(())
            }
            MpiError::ThreadLevelViolation { provided, detail } => {
                write!(f, "thread level violation under {provided}: {detail}")
            }
            MpiError::ArgError(m) => write!(f, "invalid MPI argument: {m}"),
            MpiError::Aborted(reason) => write!(f, "aborted: {reason}"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::CollectiveOp;

    #[test]
    fn errors_render() {
        let e = MpiError::CollectiveMismatch {
            comm: 0,
            seq: 3,
            expected: Signature::collective(CollectiveOp::Barrier, None, None, None),
            expected_rank: 0,
            got: Signature::collective(
                CollectiveOp::Bcast,
                None,
                Some(0),
                Some(crate::value::MpiType::Int),
            ),
            got_rank: 2,
        };
        let s = e.to_string();
        assert!(s.contains("rank 0"), "{s}");
        assert!(s.contains("MPI_Barrier"), "{s}");
        assert!(s.contains("MPI_Bcast"), "{s}");

        let d = MpiError::Deadlock {
            states: vec![
                RankActivity::InCollective {
                    seq: 1,
                    what: "MPI_Barrier".into(),
                },
                RankActivity::Finished,
            ],
        };
        let s = d.to_string();
        assert!(s.contains("rank 0"), "{s}");
        assert!(s.contains("finished"), "{s}");
    }
}
