//! The sharded matching engine (default): one matching space per
//! communicator and one mailbox shard per (communicator, destination),
//! each with its own mutex and condvar, so traffic on disjoint
//! communicators — and receives on distinct destinations — never
//! contend. One small **world lock** remains, covering only the
//! liveness-census state (per-rank activity, live-thread counts,
//! parked-wait patterns); the fast paths (send, isend, irecv,
//! message-present recv, results-ready collective) never touch it.
//!
//! ## Lock order
//!
//! `census → comms (R/W) → match space → mailbox shard`, with the
//! `requests` table locked either alone or outermost-before-a-shard
//! (the `wait` path needs consume-and-retire to be atomic), and the
//! `abort` slot locked alone. Paths that would invert the order release
//! first: communicator-management collectives release the match space
//! before taking the communicator table write lock, and every error
//! path releases its locks before publishing the abort.
//!
//! ## Park protocol
//!
//! A blocking wait (1) fast-checks its condition under the shard/match
//! lock, (2) on a miss **registers** its parked pattern under the
//! census lock and runs the census, (3) re-locks the shard/match,
//! re-checks the condition *and* the abort flag, and only then waits on
//! the shard/match condvar (notifiers signal while holding the same
//! mutex, so no wakeup is lost), (4) on wake **deregisters** — and
//! resets its activity to `Running` — *before* consuming. Consuming
//! while still registered would let a concurrent census observe
//! "every thread parked, nothing buffered" mid-consume and declare a
//! deadlock that isn't there; the deregister-first discipline keeps the
//! census invariant: a registered pattern is untouched until its thread
//! re-acquires the census lock.
//!
//! The census itself (see [`crate::census`]) runs under the census
//! lock. That lock freezes the registration state; and whenever the
//! census *gate* passes — every live thread of every unfinished rank
//! registered-parked — no thread can be mid-send or mid-collect (those
//! run unregistered), so the per-shard reads the census performs are a
//! consistent snapshot even though it takes the shard locks one at a
//! time.

use crate::census::{deadlock_census, CensusInput};
use crate::error::{MpiError, RankActivity};
use crate::signature::{CollectiveOp, Signature};
use crate::value::MpiValue;
use crate::world::{
    bad_comm, comm_suffix, compute_results, decode_recv_key, matching_message, not_member,
    thread_level_violation, value_or_any, Instance, Message, MpiConfig, Request, RequestState,
};
use parcoach_front::ast::ThreadLevel;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One mailbox shard: the buffered messages for one (communicator,
/// destination) pair, plus the condvar its receivers park on.
struct MailShard {
    queue: Mutex<Vec<Message>>,
    cv: Condvar,
}

/// The collective-matching state of one communicator.
struct CommMatch {
    instances: VecDeque<Instance>,
    base_seq: u64,
    per_rank_seq: Vec<u64>,
}

/// One communicator's matching space: immutable membership, the
/// collective matcher, and the per-destination mailbox shards.
struct CommSpace {
    /// Global ranks, ordered; the position is the comm-local rank.
    members: Vec<usize>,
    match_: Mutex<CommMatch>,
    match_cv: Condvar,
    /// One shard per local destination rank.
    mail: Vec<MailShard>,
    /// Messages sent on this communicator, per local sender.
    p2p_sent: Vec<AtomicU64>,
    /// Messages received on this communicator, per local receiver.
    p2p_recvd: Vec<AtomicU64>,
}

impl CommSpace {
    fn new(members: Vec<usize>) -> CommSpace {
        let n = members.len();
        CommSpace {
            members,
            match_: Mutex::new(CommMatch {
                instances: VecDeque::new(),
                base_seq: 0,
                per_rank_seq: vec![0; n],
            }),
            match_cv: Condvar::new(),
            mail: (0..n)
                .map(|_| MailShard {
                    queue: Mutex::new(Vec::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            p2p_sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            p2p_recvd: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn local_rank(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&g| g == global)
    }
}

/// The census-relevant state — everything the remaining world lock
/// guards.
struct CensusState {
    provided: Option<ThreadLevel>,
    /// Per-rank single-slot activity (the reported states).
    activity: Vec<RankActivity>,
    /// Registered live interpreter threads per rank.
    live: Vec<usize>,
    /// One pattern per thread parked in a blocking MPI wait, per rank.
    blocked: Vec<Vec<RankActivity>>,
}

fn encode_level(l: Option<ThreadLevel>) -> u8 {
    match l {
        None => 0,
        Some(ThreadLevel::Single) => 1,
        Some(ThreadLevel::Funneled) => 2,
        Some(ThreadLevel::Serialized) => 3,
        Some(ThreadLevel::Multiple) => 4,
    }
}

fn decode_level(b: u8) -> Option<ThreadLevel> {
    match b {
        1 => Some(ThreadLevel::Single),
        2 => Some(ThreadLevel::Funneled),
        3 => Some(ThreadLevel::Serialized),
        4 => Some(ThreadLevel::Multiple),
        _ => None,
    }
}

/// The sharded world engine.
pub(crate) struct ShardedWorld {
    cfg: MpiConfig,
    /// The small world lock: census/liveness state only.
    census: Mutex<CensusState>,
    comms: RwLock<Vec<Arc<CommSpace>>>,
    /// All non-blocking requests ever posted; handles index this table.
    requests: Mutex<Vec<Request>>,
    abort: Mutex<Option<MpiError>>,
    aborted: AtomicBool,
    /// Mirror of `CensusState::provided` for the lock-free entry check.
    provided_fast: AtomicU8,
    /// Number of MPI calls currently in flight per rank (threads).
    in_flight: Vec<AtomicUsize>,
}

impl ShardedWorld {
    pub(crate) fn new(cfg: MpiConfig) -> ShardedWorld {
        let size = cfg.world_size;
        ShardedWorld {
            census: Mutex::new(CensusState {
                provided: None,
                activity: vec![RankActivity::Running; size],
                live: vec![0; size],
                blocked: vec![Vec::new(); size],
            }),
            comms: RwLock::new(vec![Arc::new(CommSpace::new((0..size).collect()))]),
            requests: Mutex::new(Vec::new()),
            abort: Mutex::new(None),
            aborted: AtomicBool::new(false),
            provided_fast: AtomicU8::new(0),
            in_flight: (0..size).map(|_| AtomicUsize::new(0)).collect(),
            cfg,
        }
    }

    fn space(&self, comm: usize) -> Option<Arc<CommSpace>> {
        self.comms.read().get(comm).cloned()
    }

    pub(crate) fn comm_size(&self, comm: usize) -> Option<usize> {
        self.space(comm).map(|sp| sp.members.len())
    }

    pub(crate) fn comm_rank(&self, comm: usize, global: usize) -> Option<usize> {
        self.space(comm).and_then(|sp| sp.local_rank(global))
    }

    pub(crate) fn init(&self, _rank: usize, required: ThreadLevel) -> ThreadLevel {
        let provided = required.min(self.cfg.max_provided);
        let mut cs = self.census.lock();
        // First init fixes the level; later inits (other ranks) keep the
        // weakest requested so enforcement is uniform.
        cs.provided = Some(match cs.provided {
            None => provided,
            Some(cur) => cur.min(provided),
        });
        self.provided_fast
            .store(encode_level(cs.provided), Ordering::SeqCst);
        provided
    }

    pub(crate) fn provided(&self) -> ThreadLevel {
        self.census.lock().provided.unwrap_or(ThreadLevel::Multiple)
    }

    fn aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    fn aborted_err(&self) -> MpiError {
        let reason = self.abort.lock().clone();
        MpiError::Aborted(reason.map(|e| e.to_string()).unwrap_or_default())
    }

    /// Publish the abort (first one wins) and wake every parked thread.
    /// Callers must hold no locks: the wakeup sweep takes every match
    /// and shard mutex so the flag-check-then-wait of the park protocol
    /// cannot lose the notification.
    fn set_abort(&self, err: MpiError) {
        {
            let mut a = self.abort.lock();
            if a.is_none() {
                *a = Some(err);
                self.aborted.store(true, Ordering::SeqCst);
            }
        }
        let comms = self.comms.read();
        for sp in comms.iter() {
            {
                let _m = sp.match_.lock();
                sp.match_cv.notify_all();
            }
            for sh in &sp.mail {
                let _q = sh.queue.lock();
                sh.cv.notify_all();
            }
        }
    }

    pub(crate) fn abort(&self, reason: MpiError) {
        self.set_abort(reason);
    }

    pub(crate) fn abort_reason(&self) -> Option<MpiError> {
        self.abort.lock().clone()
    }

    /// Guard every MPI entry: enforces the provided thread level.
    /// Lock-free — the abort flag, the mirrored level and the per-rank
    /// in-flight counter are atomics.
    fn enter_mpi(&self, rank: usize, is_initial_thread: bool) -> Result<(), MpiError> {
        if self.aborted() {
            return Err(self.aborted_err());
        }
        let provided = decode_level(self.provided_fast.load(Ordering::SeqCst))
            .unwrap_or(ThreadLevel::Multiple);
        let prev = self.in_flight[rank].fetch_add(1, Ordering::SeqCst);
        if let Some(detail) = thread_level_violation(provided, prev > 0, is_initial_thread) {
            self.in_flight[rank].fetch_sub(1, Ordering::SeqCst);
            let err = MpiError::ThreadLevelViolation { provided, detail };
            self.set_abort(err.clone());
            return Err(err);
        }
        Ok(())
    }

    fn leave_mpi(&self, rank: usize) {
        self.in_flight[rank].fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn thread_started(&self, rank: usize) {
        let mut cs = self.census.lock();
        cs.live[rank] += 1;
    }

    pub(crate) fn thread_departed(&self, rank: usize) {
        let err = {
            let mut cs = self.census.lock();
            cs.live[rank] = cs.live[rank].saturating_sub(1);
            // The departure may make the census provable for the
            // threads that stay parked; unlike the legacy engine (whose
            // global condvar re-runs the census on every wakeup) nobody
            // will re-check on their behalf, so run it here.
            if self.aborted() {
                None
            } else {
                self.census_check(&cs)
            }
        };
        if let Some(e) = err {
            self.set_abort(e);
        }
    }

    pub(crate) fn finish_rank(&self, rank: usize) {
        let err = {
            let mut cs = self.census.lock();
            cs.activity[rank] = RankActivity::Finished;
            cs.live[rank] = cs.live[rank].saturating_sub(1);
            if self.aborted() {
                None
            } else {
                let pending_collective = {
                    let comms = self.comms.read();
                    comms.iter().any(|sp| {
                        let m = sp.match_.lock();
                        m.instances
                            .iter()
                            .any(|i| i.results.is_none() && i.arrived_count > 0)
                    })
                };
                let all_settled = cs
                    .activity
                    .iter()
                    .all(|a| !matches!(a, RankActivity::Running));
                if pending_collective && all_settled {
                    Some(MpiError::RankFinishedEarly {
                        finished_rank: rank,
                        states: cs.activity.clone(),
                    })
                } else {
                    self.census_check(&cs)
                }
            }
        };
        if let Some(e) = err {
            self.set_abort(e);
        }
    }

    /// Run the shared census over the frozen registration state. Caller
    /// holds the census lock; the per-space locks are taken one at a
    /// time (order: census → comms → match/shard) — see the module
    /// docs for why that still reads a consistent snapshot.
    fn census_check(&self, cs: &CensusState) -> Option<MpiError> {
        let comms = self.comms.read();
        let any_uncollected = comms.iter().any(|sp| {
            let m = sp.match_.lock();
            m.instances.iter().any(|i| i.results.is_some())
        });
        let input = CensusInput {
            provided: cs.provided,
            activity: &cs.activity,
            live: &cs.live,
            blocked: &cs.blocked,
            any_uncollected,
        };
        deadlock_census(
            &input,
            &|rank, comm, src, tag| {
                comms.get(comm).is_some_and(|sp| {
                    sp.local_rank(rank).is_some_and(|local| {
                        let q = sp.mail[local].queue.lock();
                        matching_message(&q, comm, src, tag).is_some()
                    })
                })
            },
            &|comm, local| {
                comms
                    .get(comm)
                    .and_then(|sp| sp.members.get(local).copied())
            },
        )
    }

    /// Register `act` as a parked pattern, run the census, then wait on
    /// `cv` until `ready`, abort or the deadline — and deregister. The
    /// caller re-checks its condition on `Ok(())`; `Err` aborts the
    /// world (census verdict or timeout).
    #[allow(clippy::too_many_arguments)]
    fn park<T>(
        &self,
        rank: usize,
        act: &RankActivity,
        mu: &Mutex<T>,
        cv: &Condvar,
        ready: impl Fn(&T) -> bool,
        deadline: Instant,
        what: impl Fn() -> String,
    ) -> Result<(), MpiError> {
        {
            let mut cs = self.census.lock();
            cs.activity[rank] = act.clone();
            cs.blocked[rank].push(act.clone());
            if let Some(dl) = self.census_check(&cs) {
                unpark(&mut cs, rank, act);
                drop(cs);
                self.set_abort(dl.clone());
                return Err(dl);
            }
        }
        let timed_out = {
            let mut g = mu.lock();
            if self.aborted() || ready(&g) {
                false
            } else {
                cv.wait_until(&mut g, deadline).timed_out()
            }
        };
        let mut cs = self.census.lock();
        unpark(&mut cs, rank, act);
        if timed_out {
            cs.activity[rank] = act.clone();
            let err = MpiError::Timeout {
                what: what(),
                states: cs.activity.clone(),
            };
            drop(cs);
            self.set_abort(err.clone());
            return Err(err);
        }
        // Deregister-before-consume: while unregistered the activity
        // must read Running, or a concurrent census would count this
        // progressing thread as blocked.
        cs.activity[rank] = RankActivity::Running;
        Ok(())
    }

    /// Deliver one buffered message: validates the destination and tag,
    /// bumps the sender's counter and appends to the destination's
    /// shard, waking its receivers.
    fn deliver(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
    ) -> Result<(), MpiError> {
        if tag < 0 {
            return Err(MpiError::ArgError(format!(
                "send tag {tag} must be non-negative (wildcards are receive-only)"
            )));
        }
        let Some(sp) = self.space(comm) else {
            return Err(bad_comm(comm));
        };
        let Some(src_local) = sp.local_rank(rank) else {
            return Err(not_member(rank, comm));
        };
        if dest >= sp.members.len() {
            return Err(MpiError::ArgError(format!(
                "send destination {dest} out of range for communicator size {}",
                sp.members.len()
            )));
        }
        sp.p2p_sent[src_local].fetch_add(1, Ordering::SeqCst);
        let shard = &sp.mail[dest];
        let mut q = shard.queue.lock();
        q.push(Message {
            comm,
            src: src_local,
            tag,
            value,
        });
        shard.cv.notify_all();
        Ok(())
    }

    pub(crate) fn send_on(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<(), MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.deliver(rank, comm, dest, tag, value);
        if let Err(e) = &result {
            self.set_abort(e.clone());
        }
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn isend(
        &self,
        rank: usize,
        comm: usize,
        dest: usize,
        tag: i64,
        value: MpiValue,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.deliver(rank, comm, dest, tag, value).map(|()| {
            let mut reqs = self.requests.lock();
            reqs.push(Request {
                owner: rank,
                state: RequestState::SendDone,
            });
            reqs.len() - 1
        });
        if let Err(e) = &result {
            self.set_abort(e.clone());
        }
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn irecv(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<usize, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = (|| {
            let (s, t) = decode_recv_key(src, tag)?;
            let Some(sp) = self.space(comm) else {
                return Err(bad_comm(comm));
            };
            if sp.local_rank(rank).is_none() {
                return Err(not_member(rank, comm));
            }
            if let Some(s) = s {
                if s >= sp.members.len() {
                    return Err(MpiError::ArgError(format!(
                        "irecv source {s} out of range for communicator size {}",
                        sp.members.len()
                    )));
                }
            }
            let mut reqs = self.requests.lock();
            reqs.push(Request {
                owner: rank,
                state: RequestState::RecvPending {
                    comm,
                    src: s,
                    tag: t,
                },
            });
            Ok(reqs.len() - 1)
        })();
        if let Err(e) = &result {
            self.set_abort(e.clone());
        }
        self.leave_mpi(rank);
        result
    }

    pub(crate) fn wait(
        &self,
        rank: usize,
        request: usize,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.wait_inner(rank, request);
        self.leave_mpi(rank);
        result
    }

    fn wait_inner(&self, rank: usize, request: usize) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let (comm, src, tag) = {
            let mut reqs = self.requests.lock();
            let req = match reqs.get(request).cloned() {
                Some(r) => r,
                None => {
                    let err = MpiError::ArgError(format!("invalid request handle #{request}"));
                    drop(reqs);
                    self.set_abort(err.clone());
                    return Err(err);
                }
            };
            if req.owner != rank {
                let err = MpiError::ArgError(format!(
                    "rank {rank} cannot wait on request #{request} posted by rank {}",
                    req.owner
                ));
                drop(reqs);
                self.set_abort(err.clone());
                return Err(err);
            }
            match req.state {
                RequestState::SendDone => {
                    reqs[request].state = RequestState::Retired;
                    return Ok(MpiValue::Int(0));
                }
                RequestState::Retired => {
                    let err = MpiError::ArgError(format!(
                        "request #{request} was already completed by a previous wait"
                    ));
                    drop(reqs);
                    self.set_abort(err.clone());
                    return Err(err);
                }
                RequestState::RecvPending { comm, src, tag } => (comm, src, tag),
            }
        };
        let sp = self.space(comm).expect("membership checked at post time");
        let my_local = sp
            .local_rank(rank)
            .expect("membership checked at post time");
        let shard = &sp.mail[my_local];
        let act = RankActivity::InWait {
            request,
            comm,
            src,
            tag,
        };
        loop {
            {
                // Requests outermost: consume-and-retire must be atomic,
                // and the retired-by-a-sibling re-check every round is
                // what turns a double wait into the documented error.
                let mut reqs = self.requests.lock();
                if self.aborted() {
                    return Err(self.aborted_err());
                }
                if matches!(reqs[request].state, RequestState::Retired) {
                    let err = MpiError::ArgError(format!(
                        "request #{request} was already completed by a previous wait"
                    ));
                    drop(reqs);
                    self.set_abort(err.clone());
                    return Err(err);
                }
                let mut q = shard.queue.lock();
                if let Some(pos) = matching_message(&q, comm, src, tag) {
                    let msg = q.remove(pos);
                    drop(q);
                    sp.p2p_recvd[my_local].fetch_add(1, Ordering::SeqCst);
                    reqs[request].state = RequestState::Retired;
                    return Ok(msg.value);
                }
            }
            self.park(
                rank,
                &act,
                &shard.queue,
                &shard.cv,
                |q| matching_message(q, comm, src, tag).is_some(),
                deadline,
                || {
                    format!(
                        "MPI_Wait(req #{request}){} on rank {rank}",
                        comm_suffix(comm)
                    )
                },
            )?;
        }
    }

    pub(crate) fn recv_on(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.recv_inner(rank, comm, src, tag);
        self.leave_mpi(rank);
        result
    }

    fn recv_inner(
        &self,
        rank: usize,
        comm: usize,
        src: i64,
        tag: i64,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        let (src, tag) = match decode_recv_key(src, tag) {
            Ok(k) => k,
            Err(err) => {
                self.set_abort(err.clone());
                return Err(err);
            }
        };
        let Some(sp) = self.space(comm) else {
            let err = bad_comm(comm);
            self.set_abort(err.clone());
            return Err(err);
        };
        let Some(my_local) = sp.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.set_abort(err.clone());
            return Err(err);
        };
        if let Some(s) = src {
            if s >= sp.members.len() {
                let err = MpiError::ArgError(format!(
                    "recv source {s} out of range for communicator size {}",
                    sp.members.len()
                ));
                self.set_abort(err.clone());
                return Err(err);
            }
        }
        let shard = &sp.mail[my_local];
        let act = RankActivity::InRecv { comm, src, tag };
        loop {
            {
                let mut q = shard.queue.lock();
                if self.aborted() {
                    return Err(self.aborted_err());
                }
                if let Some(pos) = matching_message(&q, comm, src, tag) {
                    let msg = q.remove(pos);
                    drop(q);
                    sp.p2p_recvd[my_local].fetch_add(1, Ordering::SeqCst);
                    return Ok(msg.value);
                }
            }
            self.park(
                rank,
                &act,
                &shard.queue,
                &shard.cv,
                |q| matching_message(q, comm, src, tag).is_some(),
                deadline,
                || {
                    format!(
                        "MPI_Recv(src={}, tag={}{}) on rank {rank}",
                        value_or_any(src),
                        value_or_any(tag),
                        comm_suffix(comm)
                    )
                },
            )?;
        }
    }

    pub(crate) fn enter_collective(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
        is_initial_thread: bool,
    ) -> Result<MpiValue, MpiError> {
        self.enter_mpi(rank, is_initial_thread)?;
        let result = self.enter_collective_inner(rank, comm, sig, payload);
        self.leave_mpi(rank);
        result
    }

    fn enter_collective_inner(
        &self,
        rank: usize,
        comm: usize,
        sig: Signature,
        payload: Option<MpiValue>,
    ) -> Result<MpiValue, MpiError> {
        let deadline = Instant::now() + self.cfg.op_timeout;
        if self.aborted() {
            return Err(self.aborted_err());
        }
        let Some(sp) = self.space(comm) else {
            let err = bad_comm(comm);
            self.set_abort(err.clone());
            return Err(err);
        };
        let Some(local) = sp.local_rank(rank) else {
            let err = not_member(rank, comm);
            self.set_abort(err.clone());
            return Err(err);
        };
        let size = sp.members.len();
        // Arrival: claim this rank's next sequence slot and post the
        // payload. The last arriver takes the payload snapshot out.
        let (seq, completed_payloads) = {
            let mut m = sp.match_.lock();
            let seq = m.per_rank_seq[local];
            m.per_rank_seq[local] += 1;
            while m.base_seq + (m.instances.len() as u64) <= seq {
                m.instances.push_back(Instance::new(size));
            }
            let idx = (seq - m.base_seq) as usize;
            let inst = &mut m.instances[idx];
            match &inst.signature {
                None => {
                    inst.signature = Some(sig);
                    inst.first_rank = rank;
                }
                Some(existing) if *existing != sig => {
                    let err = MpiError::CollectiveMismatch {
                        comm,
                        seq,
                        expected: *existing,
                        expected_rank: inst.first_rank,
                        got: sig,
                        got_rank: rank,
                    };
                    drop(m);
                    self.set_abort(err.clone());
                    return Err(err);
                }
                Some(_) => {}
            }
            inst.payloads[local] = payload;
            inst.arrived_count += 1;
            let snapshot = (inst.arrived_count == size).then(|| inst.payloads.clone());
            (seq, snapshot)
        };
        if let Some(payloads) = completed_payloads {
            // Compute results with the match space released:
            // communicator management needs the communicator-table
            // write lock, which orders *before* any match space.
            let results = match sig.op {
                CollectiveOp::CommSplit => self.split_results(&sp.members, &payloads),
                CollectiveOp::CommDup => Ok(self.dup_results(&sp.members)),
                CollectiveOp::P2pCensus => Ok(self.census_results(size)),
                _ => compute_results(sig, &payloads, size),
            };
            match results {
                Ok(results) => {
                    let mut m = sp.match_.lock();
                    let idx = (seq - m.base_seq) as usize;
                    m.instances[idx].results = Some(results);
                    sp.match_cv.notify_all();
                }
                Err(err) => {
                    self.set_abort(err.clone());
                    return Err(err);
                }
            }
        }
        let act = RankActivity::InCollective {
            seq,
            what: format!("{sig}{}", comm_suffix(comm)),
        };
        // Wait for results.
        loop {
            {
                let mut m = sp.match_.lock();
                if self.aborted() {
                    return Err(self.aborted_err());
                }
                let idx = (seq - m.base_seq) as usize;
                let inst = &mut m.instances[idx];
                if let Some(results) = &inst.results {
                    let out = results[local].clone();
                    inst.collected[local] = true;
                    inst.collected_count += 1;
                    // Drop fully-collected instances from the front.
                    while let Some(front) = m.instances.front() {
                        if front.collected_count == size {
                            m.instances.pop_front();
                            m.base_seq += 1;
                        } else {
                            break;
                        }
                    }
                    return Ok(out);
                }
            }
            self.park(
                rank,
                &act,
                &sp.match_,
                &sp.match_cv,
                |m| {
                    let idx = (seq - m.base_seq) as usize;
                    m.instances.get(idx).is_none_or(|i| i.results.is_some())
                },
                deadline,
                || {
                    format!(
                        "{sig}{} on rank {rank} (collective #{seq})",
                        comm_suffix(comm)
                    )
                },
            )?;
        }
    }

    /// `MPI_Comm_split` results: group the parent's members by color,
    /// order each group by (key, global rank), allocate one new
    /// communicator per color (ascending), and hand every member its
    /// group's handle.
    fn split_results(
        &self,
        members: &[usize],
        payloads: &[Option<MpiValue>],
    ) -> Result<Vec<MpiValue>, MpiError> {
        let mut entries: Vec<(i64, i64, usize)> = Vec::with_capacity(members.len()); // (color, key, global)
        for (local, p) in payloads.iter().enumerate() {
            match p {
                Some(MpiValue::ArrayInt(ck)) if ck.len() == 2 => {
                    entries.push((ck[0], ck[1], members[local]));
                }
                _ => {
                    return Err(MpiError::ArgError(
                        "MPI_Comm_split payload must be [color, key]".into(),
                    ))
                }
            }
        }
        let mut colors: Vec<i64> = entries.iter().map(|e| e.0).collect();
        colors.sort_unstable();
        colors.dedup();
        let mut comms = self.comms.write();
        let mut handle_of_global: Vec<(usize, usize)> = Vec::new(); // (global, handle)
        for color in colors {
            let mut group: Vec<(i64, usize)> = entries
                .iter()
                .filter(|e| e.0 == color)
                .map(|e| (e.1, e.2))
                .collect();
            group.sort_unstable();
            let handle = comms.len();
            let group_members: Vec<usize> = group.iter().map(|&(_, g)| g).collect();
            for &g in &group_members {
                handle_of_global.push((g, handle));
            }
            comms.push(Arc::new(CommSpace::new(group_members)));
        }
        Ok(members
            .iter()
            .map(|g| {
                let h = handle_of_global
                    .iter()
                    .find(|(gg, _)| gg == g)
                    .expect("every member is in a group")
                    .1;
                MpiValue::Int(h as i64)
            })
            .collect())
    }

    /// `MPI_Comm_dup` results: one new communicator with the same
    /// members.
    fn dup_results(&self, members: &[usize]) -> Vec<MpiValue> {
        let size = members.len();
        let mut comms = self.comms.write();
        let handle = comms.len();
        comms.push(Arc::new(CommSpace::new(members.to_vec())));
        vec![MpiValue::Int(handle as i64); size]
    }

    /// P2p census results: snapshot the per-communicator send/receive
    /// totals, then reset the counters (the epoch ends at the census).
    /// The swap-to-zero reads are exact: the census is a collective, so
    /// every rank is inside it and no send/recv is in flight.
    fn census_results(&self, size: usize) -> Vec<MpiValue> {
        let comms = self.comms.read();
        let mut flat: Vec<i64> = Vec::with_capacity(comms.len() * 3);
        for (h, sp) in comms.iter().enumerate() {
            let sent: u64 = sp
                .p2p_sent
                .iter()
                .map(|x| x.swap(0, Ordering::SeqCst))
                .sum();
            let recvd: u64 = sp
                .p2p_recvd
                .iter()
                .map(|x| x.swap(0, Ordering::SeqCst))
                .sum();
            flat.push(h as i64);
            flat.push(sent as i64);
            flat.push(recvd as i64);
        }
        vec![MpiValue::ArrayInt(flat); size]
    }
}

/// Remove one parked-pattern record for `rank` equal to `act` (the
/// entry this thread pushed before waiting; equal records from sibling
/// threads are interchangeable, so removing any one keeps the multiset
/// right).
fn unpark(cs: &mut CensusState, rank: usize, act: &RankActivity) {
    if let Some(i) = cs.blocked[rank].iter().rposition(|a| a == act) {
        cs.blocked[rank].swap_remove(i);
    }
}
