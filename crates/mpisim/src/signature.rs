//! Collective signatures — what the matcher compares across ranks.
//!
//! Following MUST's checks, a collective only matches if all ranks agree
//! on the *operation*, the *root* (for rooted collectives), the
//! *reduction operator* (for reducing collectives) and the *payload
//! type*. The PARCOACH `CC` control operation is itself a signature so
//! instrumented and uninstrumented call sites can never be confused.

use crate::value::MpiType;
use parcoach_front::ast::{CollectiveKind, ReduceOp};
use std::fmt;

/// The operation field of a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// `MPI_Barrier`
    Barrier,
    /// `MPI_Bcast`
    Bcast,
    /// `MPI_Reduce`
    Reduce,
    /// `MPI_Allreduce`
    Allreduce,
    /// `MPI_Gather`
    Gather,
    /// `MPI_Allgather`
    Allgather,
    /// `MPI_Scatter`
    Scatter,
    /// `MPI_Alltoall`
    Alltoall,
    /// `MPI_Scan`
    Scan,
    /// `MPI_Reduce_scatter`
    ReduceScatter,
    /// PARCOACH `CC` control all-reduce (color min/max).
    ControlCc,
    /// `MPI_Finalize` acts as a final synchronizing collective.
    Finalize,
    /// `MPI_Comm_split` — communicator-management collective.
    CommSplit,
    /// `MPI_Comm_dup` — communicator-management collective.
    CommDup,
    /// PARCOACH point-to-point epoch census (world-synchronizing
    /// control collective exchanging per-communicator traffic totals).
    P2pCensus,
}

impl From<CollectiveKind> for CollectiveOp {
    fn from(k: CollectiveKind) -> Self {
        match k {
            CollectiveKind::Barrier => CollectiveOp::Barrier,
            CollectiveKind::Bcast => CollectiveOp::Bcast,
            CollectiveKind::Reduce => CollectiveOp::Reduce,
            CollectiveKind::Allreduce => CollectiveOp::Allreduce,
            CollectiveKind::Gather => CollectiveOp::Gather,
            CollectiveKind::Allgather => CollectiveOp::Allgather,
            CollectiveKind::Scatter => CollectiveOp::Scatter,
            CollectiveKind::Alltoall => CollectiveOp::Alltoall,
            CollectiveKind::Scan => CollectiveOp::Scan,
            CollectiveKind::ReduceScatter => CollectiveOp::ReduceScatter,
        }
    }
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollectiveOp::Barrier => "MPI_Barrier",
            CollectiveOp::Bcast => "MPI_Bcast",
            CollectiveOp::Reduce => "MPI_Reduce",
            CollectiveOp::Allreduce => "MPI_Allreduce",
            CollectiveOp::Gather => "MPI_Gather",
            CollectiveOp::Allgather => "MPI_Allgather",
            CollectiveOp::Scatter => "MPI_Scatter",
            CollectiveOp::Alltoall => "MPI_Alltoall",
            CollectiveOp::Scan => "MPI_Scan",
            CollectiveOp::ReduceScatter => "MPI_Reduce_scatter",
            CollectiveOp::ControlCc => "CC (PARCOACH check)",
            CollectiveOp::Finalize => "MPI_Finalize",
            CollectiveOp::CommSplit => "MPI_Comm_split",
            CollectiveOp::CommDup => "MPI_Comm_dup",
            CollectiveOp::P2pCensus => "P2P census (PARCOACH check)",
        };
        write!(f, "{name}")
    }
}

/// The full matched signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Operation.
    pub op: CollectiveOp,
    /// Reduction operator for reducing collectives.
    pub reduce_op: Option<ReduceOp>,
    /// Root rank for rooted collectives.
    pub root: Option<usize>,
    /// Payload type tag.
    pub ty: Option<MpiType>,
}

impl Signature {
    /// Build a collective signature.
    pub fn collective(
        op: CollectiveOp,
        reduce_op: Option<ReduceOp>,
        root: Option<usize>,
        ty: Option<MpiType>,
    ) -> Signature {
        Signature {
            op,
            reduce_op,
            root,
            ty,
        }
    }

    /// The `CC` signature (colors are payload, not signature).
    pub fn control_cc() -> Signature {
        Signature {
            op: CollectiveOp::ControlCc,
            reduce_op: None,
            root: None,
            ty: None,
        }
    }

    /// The finalize pseudo-collective.
    pub fn finalize() -> Signature {
        Signature {
            op: CollectiveOp::Finalize,
            reduce_op: None,
            root: None,
            ty: None,
        }
    }

    /// The `MPI_Comm_split` management collective (colors/keys are
    /// payload, not signature).
    pub fn comm_split() -> Signature {
        Signature {
            op: CollectiveOp::CommSplit,
            reduce_op: None,
            root: None,
            ty: None,
        }
    }

    /// The `MPI_Comm_dup` management collective.
    pub fn comm_dup() -> Signature {
        Signature {
            op: CollectiveOp::CommDup,
            reduce_op: None,
            root: None,
            ty: None,
        }
    }

    /// The point-to-point epoch census control collective.
    pub fn p2p_census() -> Signature {
        Signature {
            op: CollectiveOp::P2pCensus,
            reduce_op: None,
            root: None,
            ty: None,
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(op) = self.reduce_op {
            write!(f, " op={}", op.name())?;
        }
        if let Some(r) = self.root {
            write!(f, " root={r}")?;
        }
        if let Some(t) = self.ty {
            write!(f, " type={t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_conversion_total() {
        for k in CollectiveKind::ALL {
            let op: CollectiveOp = k.into();
            assert!(!op.to_string().is_empty());
        }
    }

    #[test]
    fn signature_equality_sensitive_to_fields() {
        let a = Signature::collective(CollectiveOp::Bcast, None, Some(0), Some(MpiType::Int));
        let b = Signature::collective(CollectiveOp::Bcast, None, Some(1), Some(MpiType::Int));
        let c = Signature::collective(CollectiveOp::Bcast, None, Some(0), Some(MpiType::Float));
        assert_ne!(a, b, "root differs");
        assert_ne!(a, c, "type differs");
        assert_eq!(
            a,
            Signature::collective(CollectiveOp::Bcast, None, Some(0), Some(MpiType::Int))
        );
    }

    #[test]
    fn display_forms() {
        let s = Signature::collective(
            CollectiveOp::Reduce,
            Some(ReduceOp::Max),
            Some(2),
            Some(MpiType::Float),
        );
        let text = s.to_string();
        assert!(text.contains("MPI_Reduce"));
        assert!(text.contains("op=MAX"));
        assert!(text.contains("root=2"));
        assert!(text.contains("type=float"));
    }
}
