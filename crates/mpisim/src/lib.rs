//! # parcoach-mpisim — in-process MPI substrate
//!
//! A simulated MPI runtime: ranks are OS threads sharing a [`World`];
//! collectives move real data (broadcast, reductions, gathers, scatters,
//! scans…), match MUST-style signatures in per-rank program order, and a
//! global liveness census turns the hangs a real MPI run would produce
//! (mismatched counts, early exits) into precise error reports. The
//! PARCOACH `CC` control collective ([`World::control_cc`]) and the
//! MPI thread-level enforcement (`MPI_THREAD_SINGLE…MULTIPLE`) are built
//! in.
//!
//! Substitution note (DESIGN.md): stands in for a real MPI library. The
//! dynamic-check protocol is identical; only the transport (shared
//! memory instead of a network) differs, which is irrelevant to
//! collective-matching semantics.
//!
//! ```
//! use parcoach_mpisim::{World, MpiConfig, Signature, CollectiveOp, MpiValue, MpiType};
//! use parcoach_front::ast::ReduceOp;
//!
//! let world = World::new(MpiConfig { world_size: 4, ..Default::default() });
//! let sig = Signature::collective(
//!     CollectiveOp::Allreduce, Some(ReduceOp::Sum), None, Some(MpiType::Int));
//! std::thread::scope(|s| {
//!     for rank in 0..4 {
//!         let world = world.clone();
//!         s.spawn(move || {
//!             let out = world
//!                 .collective(rank, sig, Some(MpiValue::Int(rank as i64 + 1)), true)
//!                 .unwrap();
//!             assert_eq!(out, MpiValue::Int(10)); // 1+2+3+4
//!         });
//!     }
//! });
//! ```

pub(crate) mod census;
pub mod error;
pub(crate) mod legacy;
pub(crate) mod sharded;
pub mod signature;
pub mod value;
pub mod world;

pub use error::{MpiError, RankActivity};
pub use signature::{CollectiveOp, Signature};
pub use value::{MpiType, MpiValue};
pub use world::{data_signature, run_ranks, CcOutcome, MpiConfig, World};

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::ast::{ReduceOp, ThreadLevel};
    use std::sync::Arc;
    use std::time::Duration;

    fn world(n: usize) -> Arc<World> {
        World::new(MpiConfig {
            world_size: n,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_secs(5),
            ..Default::default()
        })
    }

    fn fast_world(n: usize) -> Arc<World> {
        World::new(MpiConfig {
            world_size: n,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_millis(200),
            ..Default::default()
        })
    }

    /// Run `f(rank)` on `n` pooled rank threads and collect results.
    fn run_ranks<R: Send>(w: &Arc<World>, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        assert_eq!(w.size(), n, "test worlds are sized to their rank count");
        world::run_ranks(w, f)
    }

    #[test]
    fn barrier_completes() {
        let w = world(4);
        let sig = Signature::collective(CollectiveOp::Barrier, None, None, None);
        let res = run_ranks(&w, 4, |r| w.collective(r, sig, None, true));
        assert!(res.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn allreduce_sums() {
        let w = world(3);
        let sig = Signature::collective(
            CollectiveOp::Allreduce,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 3, |r| {
            w.collective(r, sig, Some(MpiValue::Int(r as i64)), true)
        });
        for r in res {
            assert_eq!(r.unwrap(), MpiValue::Int(3));
        }
    }

    #[test]
    fn bcast_from_root() {
        let w = world(3);
        let sig = Signature::collective(CollectiveOp::Bcast, None, Some(1), Some(MpiType::Float));
        let res = run_ranks(&w, 3, |r| {
            w.collective(r, sig, Some(MpiValue::Float(r as f64 * 10.0)), true)
        });
        for r in res {
            assert_eq!(r.unwrap(), MpiValue::Float(10.0));
        }
    }

    #[test]
    fn reduce_to_root_only() {
        let w = world(3);
        let sig = Signature::collective(
            CollectiveOp::Reduce,
            Some(ReduceOp::Max),
            Some(0),
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 3, |r| {
            w.collective(r, sig, Some(MpiValue::Int(r as i64)), true)
                .unwrap()
        });
        assert_eq!(res[0], MpiValue::Int(2)); // root gets max
        assert_eq!(res[1], MpiValue::Int(1)); // others keep their own
        assert_eq!(res[2], MpiValue::Int(2));
    }

    #[test]
    fn gather_and_allgather() {
        let w = world(3);
        let sig = Signature::collective(CollectiveOp::Gather, None, Some(2), Some(MpiType::Int));
        let res = run_ranks(&w, 3, |r| {
            w.collective(r, sig, Some(MpiValue::Int(r as i64 * 2)), true)
                .unwrap()
        });
        assert_eq!(res[2], MpiValue::ArrayInt(vec![0, 2, 4]));
        assert_eq!(res[0], MpiValue::ArrayInt(vec![]));

        let w = world(3);
        let sig = Signature::collective(CollectiveOp::Allgather, None, None, Some(MpiType::Int));
        let res = run_ranks(&w, 3, |r| {
            w.collective(r, sig, Some(MpiValue::Int(r as i64)), true)
                .unwrap()
        });
        for r in res {
            assert_eq!(r, MpiValue::ArrayInt(vec![0, 1, 2]));
        }
    }

    #[test]
    fn scatter_distributes_roots_array() {
        let w = world(3);
        let sig = Signature::collective(
            CollectiveOp::Scatter,
            None,
            Some(0),
            Some(MpiType::ArrayInt),
        );
        let res = run_ranks(&w, 3, |r| {
            let payload = if r == 0 {
                MpiValue::ArrayInt(vec![7, 8, 9])
            } else {
                MpiValue::ArrayInt(vec![0, 0, 0])
            };
            w.collective(r, sig, Some(payload), true).unwrap()
        });
        assert_eq!(
            res,
            vec![MpiValue::Int(7), MpiValue::Int(8), MpiValue::Int(9)]
        );
    }

    #[test]
    fn scan_prefix() {
        let w = world(4);
        let sig = Signature::collective(
            CollectiveOp::Scan,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 4, |r| {
            w.collective(r, sig, Some(MpiValue::Int(1)), true).unwrap()
        });
        assert_eq!(
            res,
            vec![
                MpiValue::Int(1),
                MpiValue::Int(2),
                MpiValue::Int(3),
                MpiValue::Int(4)
            ]
        );
    }

    #[test]
    fn alltoall_transposes() {
        let w = world(2);
        let sig =
            Signature::collective(CollectiveOp::Alltoall, None, None, Some(MpiType::ArrayInt));
        let res = run_ranks(&w, 2, |r| {
            let payload = MpiValue::ArrayInt(vec![10 * r as i64, 10 * r as i64 + 1]);
            w.collective(r, sig, Some(payload), true).unwrap()
        });
        assert_eq!(res[0], MpiValue::ArrayInt(vec![0, 10]));
        assert_eq!(res[1], MpiValue::ArrayInt(vec![1, 11]));
    }

    #[test]
    fn reduce_scatter_combines() {
        let w = world(2);
        let sig = Signature::collective(
            CollectiveOp::ReduceScatter,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::ArrayInt),
        );
        let res = run_ranks(&w, 2, |r| {
            let payload = MpiValue::ArrayInt(vec![1 + r as i64, 10 + r as i64]);
            w.collective(r, sig, Some(payload), true).unwrap()
        });
        // Element-wise sums: [3, 21]; rank r gets element r.
        assert_eq!(res, vec![MpiValue::Int(3), MpiValue::Int(21)]);
    }

    #[test]
    fn mismatch_detected() {
        let w = fast_world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.collective(
                    0,
                    Signature::collective(CollectiveOp::Barrier, None, None, None),
                    None,
                    true,
                )
            } else {
                w.collective(
                    1,
                    Signature::collective(
                        CollectiveOp::Allreduce,
                        Some(ReduceOp::Sum),
                        None,
                        Some(MpiType::Int),
                    ),
                    Some(MpiValue::Int(1)),
                    true,
                )
            }
        });
        let failures = res.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, 2, "{res:?}");
        assert!(res
            .iter()
            .any(|r| matches!(r, Err(MpiError::CollectiveMismatch { .. }))));
    }

    #[test]
    fn root_mismatch_detected() {
        let w = fast_world(2);
        let res = run_ranks(&w, 2, |r| {
            let sig = Signature::collective(
                CollectiveOp::Bcast,
                None,
                Some(r), // each rank names itself as root → mismatch
                Some(MpiType::Int),
            );
            w.collective(r, sig, Some(MpiValue::Int(0)), true)
        });
        assert!(res
            .iter()
            .any(|r| matches!(r, Err(MpiError::CollectiveMismatch { .. }))));
    }

    #[test]
    fn rank_finishing_early_detected() {
        let w = fast_world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                let out = w.collective(
                    0,
                    Signature::collective(CollectiveOp::Barrier, None, None, None),
                    None,
                    true,
                );
                w.finish_rank(0);
                out
            } else {
                // Rank 1 exits without the barrier.
                std::thread::sleep(Duration::from_millis(20));
                w.finish_rank(1);
                Ok(MpiValue::Int(0))
            }
        });
        assert!(
            res.iter().any(|r| matches!(
                r,
                Err(MpiError::Aborted(_)) | Err(MpiError::RankFinishedEarly { .. })
            )),
            "{res:?}"
        );
        assert!(matches!(
            w.abort_reason(),
            Some(MpiError::RankFinishedEarly { .. })
        ));
    }

    #[test]
    fn count_mismatch_is_deadlock() {
        // Rank 0 does 2 barriers, rank 1 does 1 then finishes.
        let w = fast_world(2);
        let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.collective(0, bar, None, true)?;
                let out = w.collective(0, bar, None, true);
                w.finish_rank(0);
                out.map(|_| ())
            } else {
                w.collective(1, bar, None, true)?;
                w.finish_rank(1);
                Ok(())
            }
        });
        assert!(
            res.iter().any(|r| r.is_err()),
            "count mismatch must be detected: {res:?}"
        );
    }

    #[test]
    fn cc_unanimous_and_mismatched() {
        let w = world(3);
        let res = run_ranks(&w, 3, |r| w.control_cc(r, 7, true).unwrap());
        for out in &res {
            assert!(out.unanimous());
            assert_eq!(out.min_max(), (7, 7));
        }
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            w.control_cc(r, if r == 0 { 1 } else { 2 }, true).unwrap()
        });
        for out in &res {
            assert!(!out.unanimous());
            assert_eq!(out.min_max(), (1, 2));
            assert_eq!(out.colors, vec![1, 2]);
        }
    }

    #[test]
    fn send_recv_roundtrip() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.send(0, 1, 42, MpiValue::Int(99), true).unwrap();
                MpiValue::Int(0)
            } else {
                w.recv(1, 0, 42, true).unwrap()
            }
        });
        assert_eq!(res[1], MpiValue::Int(99));
    }

    #[test]
    fn recv_matches_tag() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.send(0, 1, 1, MpiValue::Int(1), true).unwrap();
                w.send(0, 1, 2, MpiValue::Int(2), true).unwrap();
                vec![]
            } else {
                // Receive tag 2 first, then tag 1.
                let a = w.recv(1, 0, 2, true).unwrap();
                let b = w.recv(1, 0, 1, true).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(res[1], vec![MpiValue::Int(2), MpiValue::Int(1)]);
    }

    #[test]
    fn recv_without_send_deadlocks() {
        let w = fast_world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 1 {
                let out = w.recv(1, 0, 5, true);
                w.finish_rank(1);
                out.map(|_| ())
            } else {
                w.finish_rank(0);
                Ok(())
            }
        });
        assert!(
            res.iter().any(|r| matches!(
                r,
                Err(MpiError::Deadlock { .. })
                    | Err(MpiError::Timeout { .. })
                    | Err(MpiError::Aborted(_))
            )),
            "{res:?}"
        );
    }

    #[test]
    fn serialized_level_rejects_concurrent_calls() {
        // Two ranks so the deadlock census cannot fire while rank 1 is
        // still running user code.
        let w = World::new(MpiConfig {
            world_size: 2,
            max_provided: ThreadLevel::Multiple,
            op_timeout: Duration::from_secs(2),
            ..Default::default()
        });
        w.init(0, ThreadLevel::Serialized);
        // Two threads of rank 0 inside MPI simultaneously: one blocks in
        // recv, the other then calls send.
        let res = std::thread::scope(|s| {
            let w1 = w.clone();
            let h1 = s.spawn(move || w1.recv(0, 0, 9, true));
            std::thread::sleep(Duration::from_millis(50));
            let w2 = w.clone();
            let h2 = s.spawn(move || w2.send(0, 0, 9, MpiValue::Int(1), false));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert!(
            matches!(res.1, Err(MpiError::ThreadLevelViolation { .. })),
            "{:?}",
            res.1
        );
    }

    #[test]
    fn funneled_rejects_non_main_thread() {
        let w = world(1);
        w.init(0, ThreadLevel::Funneled);
        let err = w.send(0, 0, 1, MpiValue::Int(1), false).unwrap_err();
        assert!(matches!(err, MpiError::ThreadLevelViolation { .. }));
    }

    #[test]
    fn multiple_level_allows_concurrency() {
        let w = world(1);
        w.init(0, ThreadLevel::Multiple);
        assert!(w.send(0, 0, 1, MpiValue::Int(1), false).is_ok());
        assert!(w.recv(0, 0, 1, false).is_ok());
    }

    #[test]
    fn init_caps_at_implementation_level() {
        let w = World::new(MpiConfig {
            world_size: 1,
            max_provided: ThreadLevel::Serialized,
            op_timeout: Duration::from_secs(1),
            ..Default::default()
        });
        let provided = w.init(0, ThreadLevel::Multiple);
        assert_eq!(provided, ThreadLevel::Serialized);
    }

    #[test]
    fn bad_root_rejected() {
        let w = fast_world(2);
        let sig = Signature::collective(CollectiveOp::Bcast, None, Some(5), Some(MpiType::Int));
        let err = w
            .collective(0, sig, Some(MpiValue::Int(1)), true)
            .unwrap_err();
        assert!(matches!(err, MpiError::ArgError(_)));
    }

    #[test]
    fn short_scatter_array_rejected() {
        let w = fast_world(2);
        let sig = Signature::collective(
            CollectiveOp::Scatter,
            None,
            Some(0),
            Some(MpiType::ArrayInt),
        );
        let res = run_ranks(&w, 2, |r| {
            w.collective(r, sig, Some(MpiValue::ArrayInt(vec![1])), true)
        });
        assert!(res
            .iter()
            .any(|r| matches!(r, Err(MpiError::ArgError(_)) | Err(MpiError::Aborted(_)))));
    }

    #[test]
    fn pipelined_collectives_many_rounds() {
        let w = world(4);
        let sig = Signature::collective(
            CollectiveOp::Allreduce,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 4, |r| {
            let mut acc = 0;
            for round in 0..50 {
                let out = w
                    .collective(r, sig, Some(MpiValue::Int(round)), true)
                    .unwrap();
                acc += out.as_int();
            }
            acc
        });
        // Each round sums 4×round.
        let expected: i64 = (0..50).map(|x| 4 * x).sum();
        for r in res {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn abort_interrupts_blocked_ranks() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.collective(
                    0,
                    Signature::collective(CollectiveOp::Barrier, None, None, None),
                    None,
                    true,
                )
                .map(|_| ())
            } else {
                std::thread::sleep(Duration::from_millis(30));
                w.abort(MpiError::ArgError("external abort".into()));
                Ok(())
            }
        });
        assert!(matches!(res[0], Err(MpiError::Aborted(_))), "{res:?}");
    }

    #[test]
    fn finalize_synchronizes() {
        let w = world(3);
        let res = run_ranks(&w, 3, |r| w.finalize(r, true));
        assert!(res.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn comm_split_partitions_by_color() {
        let w = world(4);
        let sig = Signature::collective(
            CollectiveOp::Allreduce,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 4, |r| {
            let c = w.comm_split(r, world::COMM_WORLD, (r % 2) as i64, r as i64, true)?;
            assert_eq!(w.comm_size(c), Some(2));
            assert_eq!(w.comm_rank(r, c), Some(r / 2));
            // Sum of global ranks within the parity class.
            w.collective_on(r, c, sig, Some(MpiValue::Int(r as i64)), true)
        });
        assert_eq!(res[0].clone().unwrap(), MpiValue::Int(2)); // 0 + 2
        assert_eq!(res[1].clone().unwrap(), MpiValue::Int(4)); // 1 + 3
        assert_eq!(res[2].clone().unwrap(), MpiValue::Int(2));
        assert_eq!(res[3].clone().unwrap(), MpiValue::Int(4));
    }

    #[test]
    fn comm_split_key_orders_local_ranks() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            // Reversed keys: rank 1 gets local rank 0.
            let c = w
                .comm_split(r, world::COMM_WORLD, 0, -(r as i64), true)
                .unwrap();
            w.comm_rank(r, c).unwrap()
        });
        assert_eq!(res, vec![1, 0]);
    }

    #[test]
    fn comm_dup_has_separate_matching_space() {
        let w = fast_world(2);
        let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
        let red = Signature::collective(
            CollectiveOp::Allreduce,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        // Barrier on the dup and allreduce on the world interleave per
        // communicator without a mismatch.
        let res = run_ranks(&w, 2, |r| {
            let c = w.comm_dup(r, world::COMM_WORLD, true)?;
            w.collective_on(r, c, bar, None, true)?;
            w.collective_on(r, world::COMM_WORLD, red, Some(MpiValue::Int(1)), true)
        });
        for r in res {
            assert_eq!(r.unwrap(), MpiValue::Int(2));
        }
    }

    #[test]
    fn subcomm_send_recv_uses_local_ranks() {
        let w = world(4);
        let res = run_ranks(&w, 4, |r| {
            let c = w
                .comm_split(r, world::COMM_WORLD, (r % 2) as i64, r as i64, true)
                .unwrap();
            let me = w.comm_rank(r, c).unwrap();
            let peer = 1 - me;
            w.send_on(r, c, peer, 7, MpiValue::Int(r as i64), true)
                .unwrap();
            w.recv_on(r, c, peer as i64, 7, true).unwrap()
        });
        // Parity classes {0,2} and {1,3}: each receives its peer's rank.
        assert_eq!(
            res,
            vec![
                MpiValue::Int(2),
                MpiValue::Int(3),
                MpiValue::Int(0),
                MpiValue::Int(1)
            ]
        );
    }

    #[test]
    fn p2p_census_reports_per_comm_totals() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.send(0, 1, 5, MpiValue::Int(9), true).unwrap();
            }
            // Only the sent message exists; nothing was received.
            w.p2p_census(r, true).unwrap()
        });
        for rows in &res {
            let world_row = rows.iter().find(|(h, _, _)| *h == 0).unwrap();
            assert_eq!((world_row.1, world_row.2), (1, 0));
        }
        // Counters reset at the census: a second census reads zero.
        let res = run_ranks(&w, 2, |r| w.p2p_census(r, true).unwrap());
        for rows in &res {
            let world_row = rows.iter().find(|(h, _, _)| *h == 0).unwrap();
            assert_eq!((world_row.1, world_row.2), (0, 0));
        }
    }

    #[test]
    fn isend_irecv_wait_roundtrip() {
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            let peer = 1 - r;
            let rr = w.irecv(r, world::COMM_WORLD, peer as i64, 4, true).unwrap();
            let sr = w
                .isend(
                    r,
                    world::COMM_WORLD,
                    peer,
                    4,
                    MpiValue::Int(10 + r as i64),
                    true,
                )
                .unwrap();
            let got = w.wait(r, rr, true).unwrap();
            assert_eq!(w.wait(r, sr, true).unwrap(), MpiValue::Int(0));
            got
        });
        assert_eq!(res, vec![MpiValue::Int(11), MpiValue::Int(10)]);
    }

    #[test]
    fn wildcard_wait_takes_lowest_sender_first() {
        use parcoach_front::ast::{ANY_SOURCE, ANY_TAG};
        let w = world(3);
        let res = run_ranks(&w, 3, |r| {
            if r == 2 {
                // Both peers have delivered before rank 2 posts: drain
                // with wildcards and observe the deterministic order.
                let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
                w.collective(2, bar, None, true).unwrap();
                let r1 = w
                    .irecv(2, world::COMM_WORLD, ANY_SOURCE, ANY_TAG, true)
                    .unwrap();
                let r2 = w
                    .irecv(2, world::COMM_WORLD, ANY_SOURCE, ANY_TAG, true)
                    .unwrap();
                let a = w.wait(2, r1, true).unwrap();
                let b = w.wait(2, r2, true).unwrap();
                vec![a, b]
            } else {
                w.send(r, 2, 7, MpiValue::Int(r as i64), true).unwrap();
                let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
                w.collective(r, bar, None, true).unwrap();
                vec![]
            }
        });
        // Lowest sender rank first, regardless of arrival interleaving.
        assert_eq!(res[2], vec![MpiValue::Int(0), MpiValue::Int(1)]);
    }

    #[test]
    fn blocking_recv_accepts_wildcards() {
        use parcoach_front::ast::{ANY_SOURCE, ANY_TAG};
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                w.send(0, 1, 3, MpiValue::Float(2.5), true).unwrap();
                MpiValue::Int(0)
            } else {
                w.recv(1, ANY_SOURCE, ANY_TAG, true).unwrap()
            }
        });
        assert_eq!(res[1], MpiValue::Float(2.5));
    }

    #[test]
    fn double_wait_is_an_error() {
        let w = fast_world(1);
        let h = w
            .isend(0, world::COMM_WORLD, 0, 1, MpiValue::Int(1), true)
            .unwrap();
        assert_eq!(w.wait(0, h, true).unwrap(), MpiValue::Int(0));
        let err = w.wait(0, h, true).unwrap_err();
        assert!(matches!(err, MpiError::ArgError(_)), "{err:?}");
    }

    #[test]
    fn concurrent_double_wait_is_an_error_not_a_steal() {
        // Two threads of one rank wait on the same receive request
        // under MPI_THREAD_MULTIPLE: exactly one completes it, the
        // other must observe the retirement and error — not steal the
        // next matching message.
        let w = world(1);
        w.init(0, ThreadLevel::Multiple);
        let h = w.irecv(0, world::COMM_WORLD, 0, 1, true).unwrap();
        let (a, b) = std::thread::scope(|s| {
            let w1 = w.clone();
            let ha = s.spawn(move || w1.wait(0, h, true));
            let w2 = w.clone();
            let hb = s.spawn(move || w2.wait(0, h, false));
            std::thread::sleep(Duration::from_millis(50));
            w.send(0, 0, 1, MpiValue::Int(7), true).unwrap();
            (ha.join().unwrap(), hb.join().unwrap())
        });
        let results = [a, b];
        assert_eq!(
            results.iter().filter(|r| r.is_ok()).count(),
            1,
            "exactly one waiter completes: {results:?}"
        );
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(MpiError::ArgError(_)) | Err(MpiError::Aborted(_)))),
            "the loser reports the double wait: {results:?}"
        );
    }

    #[test]
    fn wait_on_foreign_request_rejected() {
        let w = fast_world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                let h = w
                    .isend(0, world::COMM_WORLD, 1, 1, MpiValue::Int(1), true)
                    .unwrap();
                Ok(h)
            } else {
                std::thread::sleep(Duration::from_millis(30));
                // Handle 0 was posted by rank 0.
                w.wait(1, 0, true).map(|_| 0)
            }
        });
        assert!(
            matches!(
                res[1],
                Err(MpiError::ArgError(_)) | Err(MpiError::Aborted(_))
            ),
            "{:?}",
            res[1]
        );
    }

    #[test]
    fn wait_cycle_detected_not_hung() {
        // Both ranks post pinned irecvs and wait before sending: the
        // wait-for graph 0 → 1 → 0 must be reported (and quickly — via
        // the census, not the timeout).
        let w = World::new(MpiConfig {
            world_size: 2,
            max_provided: ThreadLevel::Single,
            op_timeout: Duration::from_secs(30),
            ..Default::default()
        });
        let t0 = std::time::Instant::now();
        let res = run_ranks(&w, 2, |r| {
            w.init(r, ThreadLevel::Single);
            let peer = 1 - r;
            let h = w.irecv(r, world::COMM_WORLD, peer as i64, 7, true).unwrap();
            let out = w.wait(r, h, true);
            w.finish_rank(r);
            out
        });
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "cycle must be detected by the census, not the 30s timeout"
        );
        let cycle = res
            .iter()
            .find_map(|r| match r {
                Err(MpiError::WaitCycle { cycle, .. }) => Some(cycle.clone()),
                _ => None,
            })
            .expect("wait-for cycle reported");
        let mut sorted = cycle;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn leaked_irecv_shows_in_census() {
        // Rank 1's message is never consumed (the irecv is posted but
        // never waited): the pre-finalize census reads 1 sent / 0
        // received.
        let w = world(2);
        let res = run_ranks(&w, 2, |r| {
            if r == 0 {
                let _leaked = w.irecv(0, world::COMM_WORLD, 1, 5, true).unwrap();
            } else {
                w.send(1, 0, 5, MpiValue::Int(9), true).unwrap();
            }
            w.p2p_census(r, true).unwrap()
        });
        let world_row = res[0].iter().find(|(h, _, _)| *h == 0).unwrap();
        assert_eq!((world_row.1, world_row.2), (1, 0));
    }

    #[test]
    fn send_rejects_wildcard_tags() {
        use parcoach_front::ast::ANY_TAG;
        let w = fast_world(1);
        let err = w.send(0, 0, ANY_TAG, MpiValue::Int(1), true).unwrap_err();
        assert!(matches!(err, MpiError::ArgError(_)), "{err:?}");
    }

    #[test]
    fn collective_on_bad_comm_rejected() {
        let w = fast_world(2);
        let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
        let err = w.collective_on(0, 42, bar, None, true).unwrap_err();
        assert!(matches!(err, MpiError::ArgError(_)), "{err:?}");
    }

    #[test]
    fn split_negative_color_rejected() {
        let w = fast_world(2);
        let err = w.comm_split(0, world::COMM_WORLD, -1, 0, true).unwrap_err();
        assert!(matches!(err, MpiError::ArgError(_)), "{err:?}");
    }

    #[test]
    fn subcomm_mismatch_mentions_comm() {
        let w = fast_world(2);
        let bar = Signature::collective(CollectiveOp::Barrier, None, None, None);
        let red = Signature::collective(
            CollectiveOp::Allreduce,
            Some(ReduceOp::Sum),
            None,
            Some(MpiType::Int),
        );
        let res = run_ranks(&w, 2, |r| {
            let c = w.comm_dup(r, world::COMM_WORLD, true)?;
            if r == 0 {
                w.collective_on(0, c, bar, None, true)
            } else {
                w.collective_on(1, c, red, Some(MpiValue::Int(1)), true)
            }
        });
        let msg = res
            .iter()
            .find_map(|r| match r {
                Err(MpiError::CollectiveMismatch { comm, .. }) => Some(*comm),
                _ => None,
            })
            .expect("mismatch detected");
        assert!(msg > 0, "mismatch happened on the dup, not the world");
    }
}
