//! Property tests: dominators / post-dominators on random CFGs against
//! naive reference implementations, plus structural PDF+ facts.

use parcoach_ir::dom::{DomTree, PostDomTree};
use parcoach_ir::graph::{func_from_edges, reachable};
use parcoach_ir::types::BlockId;
use proptest::prelude::*;

/// Random CFG as an edge list over `n` blocks with ≤2 successors each,
/// block 0 the entry.
fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..12).prop_flat_map(|n| {
        let succs = proptest::collection::vec(
            proptest::option::of((0..n as u32, proptest::option::of(0..n as u32))),
            n,
        );
        succs.prop_map(move |per_block| {
            let mut edges = Vec::new();
            for (i, s) in per_block.iter().enumerate() {
                if let Some((a, b)) = s {
                    edges.push((i as u32, *a));
                    if let Some(b) = b {
                        if b != a {
                            edges.push((i as u32, *b));
                        }
                    }
                }
            }
            (n, edges)
        })
    })
}

/// Naive O(n³) dominance: a dominates b iff removing a makes b
/// unreachable from the entry.
fn naive_dominates(
    n: usize,
    edges: &[(u32, u32)],
    a: BlockId,
    b: BlockId,
    reach: &[bool],
) -> bool {
    if !reach[b.index()] {
        return false;
    }
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    if a.0 == 0 {
        return true; // entry dominates everything reachable
    }
    seen[0] = true;
    while let Some(x) = stack.pop() {
        for &(s, t) in edges.iter().filter(|(s, _)| *s == x) {
            let _ = s;
            if t == a.0 {
                continue;
            }
            if !seen[t as usize] {
                seen[t as usize] = true;
                stack.push(t);
            }
        }
    }
    !seen[b.index()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn domtree_matches_naive((n, edges) in cfg_strategy()) {
        let f = func_from_edges(n, &edges);
        let dt = DomTree::compute(&f);
        let reach = reachable(&f);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (a, b) = (BlockId(a), BlockId(b));
                if !reach[a.index()] || !reach[b.index()] {
                    continue;
                }
                prop_assert_eq!(
                    dt.dominates(a, b),
                    naive_dominates(n, &edges, a, b, &reach),
                    "dominates({}, {}) mismatch on {:?}",
                    a, b, edges
                );
            }
        }
    }

    #[test]
    fn idom_is_strict_dominator((n, edges) in cfg_strategy()) {
        let f = func_from_edges(n, &edges);
        let dt = DomTree::compute(&f);
        for b in f.block_ids() {
            if let Some(d) = dt.idom(b) {
                prop_assert!(d != b);
                prop_assert!(dt.dominates(d, b));
            }
        }
    }

    #[test]
    fn pdf_members_are_branch_blocks((n, edges) in cfg_strategy()) {
        let f = func_from_edges(n, &edges);
        let pdt = PostDomTree::compute(&f);
        let reach = reachable(&f);
        let all: Vec<BlockId> = f.block_ids().filter(|b| reach[b.index()]).collect();
        for &seed in &all {
            for d in pdt.iterated_frontier(&f, &[seed]) {
                prop_assert!(
                    f.successors(d).len() >= 2,
                    "PDF+ member {d} of seed {seed} is not a branch"
                );
            }
        }
    }

    #[test]
    fn post_dominance_antisymmetric((n, edges) in cfg_strategy()) {
        let f = func_from_edges(n, &edges);
        let pdt = PostDomTree::compute(&f);
        let reach = reachable(&f);
        for a in f.block_ids() {
            for b in f.block_ids() {
                if a == b || !reach[a.index()] || !reach[b.index()] {
                    continue;
                }
                prop_assert!(
                    !(pdt.post_dominates(a, b) && pdt.post_dominates(b, a)),
                    "{a} and {b} post-dominate each other"
                );
            }
        }
    }
}
