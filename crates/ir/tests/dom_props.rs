//! Property tests: dominators / post-dominators on random CFGs against
//! naive reference implementations, plus structural PDF+ facts.
//!
//! Randomness comes from `parcoach_testutil::Rng` with per-case seeds:
//! a failure message carries the seed, and re-running the test
//! regenerates the identical CFG.

use parcoach_ir::dom::{DomTree, PostDomTree};
use parcoach_ir::graph::{func_from_edges, reachable};
use parcoach_ir::types::BlockId;
use parcoach_testutil::Rng;

/// Base budget 64; `PARCOACH_PROP_BUDGET=4` (CI's extended matrix)
/// raises it to 256 — affordable now that the simulators reuse
/// pooled threads.
fn cases() -> u64 {
    parcoach_testutil::case_budget(64)
}

/// Random CFG as an edge list over `n` blocks with ≤2 successors each,
/// block 0 the entry. Mirrors the old proptest strategy: each block
/// independently gets 0, 1, or 2 distinct successors.
fn random_cfg(rng: &mut Rng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.range_usize(3, 12);
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        if rng.bool() {
            continue; // no successors
        }
        let a = rng.range_u32(0, n as u32);
        edges.push((i, a));
        if rng.bool() {
            let b = rng.range_u32(0, n as u32);
            if b != a {
                edges.push((i, b));
            }
        }
    }
    (n, edges)
}

/// Naive O(n³) dominance: a dominates b iff removing a makes b
/// unreachable from the entry.
fn naive_dominates(n: usize, edges: &[(u32, u32)], a: BlockId, b: BlockId, reach: &[bool]) -> bool {
    if !reach[b.index()] {
        return false;
    }
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    if a.0 == 0 {
        return true; // entry dominates everything reachable
    }
    seen[0] = true;
    while let Some(x) = stack.pop() {
        for &(_, t) in edges.iter().filter(|(s, _)| *s == x) {
            if t == a.0 {
                continue;
            }
            if !seen[t as usize] {
                seen[t as usize] = true;
                stack.push(t);
            }
        }
    }
    !seen[b.index()]
}

#[test]
fn domtree_matches_naive() {
    for seed in 0..cases() {
        let (n, edges) = random_cfg(&mut Rng::new(seed));
        let f = func_from_edges(n, &edges);
        let dt = DomTree::compute(&f);
        let reach = reachable(&f);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (a, b) = (BlockId(a), BlockId(b));
                if !reach[a.index()] || !reach[b.index()] {
                    continue;
                }
                assert_eq!(
                    dt.dominates(a, b),
                    naive_dominates(n, &edges, a, b, &reach),
                    "dominates({}, {}) mismatch on {:?} (seed {seed})",
                    a,
                    b,
                    edges
                );
            }
        }
    }
}

#[test]
fn idom_is_strict_dominator() {
    for seed in 0..cases() {
        let (n, edges) = random_cfg(&mut Rng::new(seed));
        let f = func_from_edges(n, &edges);
        let dt = DomTree::compute(&f);
        for b in f.block_ids() {
            if let Some(d) = dt.idom(b) {
                assert!(d != b, "idom({b}) = {b} (seed {seed})");
                assert!(
                    dt.dominates(d, b),
                    "idom({b}) = {d} not a dominator (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn pdf_members_are_branch_blocks() {
    for seed in 0..cases() {
        let (n, edges) = random_cfg(&mut Rng::new(seed));
        let f = func_from_edges(n, &edges);
        let pdt = PostDomTree::compute(&f);
        let reach = reachable(&f);
        let all: Vec<BlockId> = f.block_ids().filter(|b| reach[b.index()]).collect();
        for &seed_block in &all {
            for d in pdt.iterated_frontier(&f, &[seed_block]) {
                assert!(
                    f.successors(d).len() >= 2,
                    "PDF+ member {d} of seed block {seed_block} is not a branch \
                     (rng seed {seed}, edges {edges:?})"
                );
            }
        }
    }
}

#[test]
fn post_dominance_antisymmetric() {
    for seed in 0..cases() {
        let (n, edges) = random_cfg(&mut Rng::new(seed));
        let f = func_from_edges(n, &edges);
        let pdt = PostDomTree::compute(&f);
        let reach = reachable(&f);
        for a in f.block_ids() {
            for b in f.block_ids() {
                if a == b || !reach[a.index()] || !reach[b.index()] {
                    continue;
                }
                assert!(
                    !(pdt.post_dominates(a, b) && pdt.post_dominates(b, a)),
                    "{a} and {b} post-dominate each other (seed {seed})"
                );
            }
        }
    }
}
