//! Dominators, post-dominators, frontiers and the *iterated
//! post-dominance frontier* — the engine behind PARCOACH's Algorithm 1.
//!
//! The dominator trees use the Cooper–Harvey–Kennedy iterative algorithm
//! ("A Simple, Fast Dominance Algorithm"), which is near-linear on real
//! CFGs and trivially correct. Post-dominance runs the same algorithm on
//! the reverse CFG with a virtual exit (see [`crate::graph::ReverseCfg`]).
//!
//! For a set `S` of blocks calling some collective `c`, `PDF+(S)`
//! (iterated post-dominance frontier) is exactly the set of conditional
//! nodes from which some path executes a different number of `c`s than
//! another — the nodes PARCOACH reports and instruments.

use crate::func::FuncIr;
use crate::graph::{reachable, reverse_post_order, ReverseCfg};
use crate::types::BlockId;

/// Dominator tree over the forward CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for entry / unreachable).
    idom: Vec<Option<BlockId>>,
    /// RPO position per block (used internally, exposed for tests).
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Compute the dominator tree of `f`.
    pub fn compute(f: &FuncIr) -> DomTree {
        let n = f.block_count();
        let rpo = reverse_post_order(f);
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally itself during computation; store
        // None for the public API.
        idom[f.entry.index()] = None;
        DomTree { idom, rpo_pos }
    }

    /// Immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Does `a` dominate `b`? (reflexive)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// RPO position of a block (usize::MAX when unreachable).
    pub fn rpo_position(&self, b: BlockId) -> usize {
        self.rpo_pos[b.index()]
    }

    /// Dominance frontier of every block.
    ///
    /// `DF(b)` = blocks `j` with a predecessor dominated by `b` (or equal
    /// to `b`) where `b` itself does not strictly dominate `j`.
    pub fn dominance_frontier(&self, f: &FuncIr) -> Vec<Vec<BlockId>> {
        let n = f.block_count();
        let preds = f.predecessors();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in f.block_ids() {
            if preds[b.index()].len() >= 2 {
                for &p in &preds[b.index()] {
                    if self.idom(p).is_none() && p != f.entry {
                        continue; // unreachable predecessor
                    }
                    let mut runner = p;
                    let stop = match self.idom(b) {
                        Some(d) => d,
                        None => continue,
                    };
                    while runner != stop {
                        if !df[runner.index()].contains(&b) {
                            df[runner.index()].push(b);
                        }
                        match self.idom(runner) {
                            Some(d) => runner = d,
                            None => break,
                        }
                    }
                }
            }
        }
        df
    }
}

/// CHK intersect: walk the two candidates up the (partial) idom tree
/// until they meet, comparing RPO positions.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("processed predecessor has idom");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("processed predecessor has idom");
        }
    }
    a
}

/// Post-dominator tree (dominance on the reverse CFG with virtual exit).
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// Immediate post-dominator per block, where the index space includes
    /// the virtual exit (`n`). `None` for the virtual exit itself and for
    /// unreachable blocks.
    ipdom: Vec<Option<usize>>,
    virtual_exit: usize,
}

impl PostDomTree {
    /// Compute the post-dominator tree of `f`.
    pub fn compute(f: &FuncIr) -> PostDomTree {
        let rcfg = ReverseCfg::build(f);
        let n = rcfg.virtual_exit + 1;
        // RPO on the reverse graph starting at the virtual exit.
        let mut state = vec![0u8; n];
        let mut post: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::new();
        state[rcfg.virtual_exit] = 1;
        stack.push((rcfg.virtual_exit, 0));
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if let Some(&s) = rcfg.succs[v].get(*cursor) {
                *cursor += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[v] = 2;
                post.push(v);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut ipdom: Vec<Option<usize>> = vec![None; n];
        ipdom[rcfg.virtual_exit] = Some(rcfg.virtual_exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &rcfg.preds[b] {
                    if ipdom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect_usize(&ipdom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if ipdom[b] != Some(ni) {
                        ipdom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        ipdom[rcfg.virtual_exit] = None;
        PostDomTree {
            ipdom,
            virtual_exit: rcfg.virtual_exit,
        }
    }

    /// Immediate post-dominator of `b`; `None` when `b`'s post-dominator
    /// is the virtual exit (i.e. nothing in the function post-dominates
    /// it) or `b` is unreachable.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.ipdom.get(b.index()).copied().flatten() {
            Some(x) if x != self.virtual_exit => Some(BlockId(x as u32)),
            _ => None,
        }
    }

    /// Does `a` post-dominate `b`? (reflexive)
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.index();
        loop {
            if cur == a.index() {
                return true;
            }
            match self.ipdom.get(cur).copied().flatten() {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Post-dominance frontier of every block.
    ///
    /// `PDF(b)` contains the *branch* blocks `j` (≥2 successors) such
    /// that `b` post-dominates a successor of `j` but not `j` itself.
    /// These are precisely the conditionals that decide whether control
    /// flows through `b`.
    pub fn frontier(&self, f: &FuncIr) -> Vec<Vec<BlockId>> {
        let n = f.block_count();
        let mut pdf: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let reach = reachable(f);
        // In the reverse graph, join nodes are original branch nodes.
        for (id, b) in f.iter_blocks() {
            if !reach[id.index()] {
                continue;
            }
            let succs = b.term.successors();
            if succs.len() < 2 {
                continue;
            }
            let stop = self.ipdom.get(id.index()).copied().flatten();
            for s in succs {
                // Walk up the post-dominator tree from each successor to
                // (but excluding) ipdom(branch); everything on the way has
                // the branch in its PDF.
                let mut runner = s.index();
                loop {
                    if Some(runner) == stop || runner == self.virtual_exit {
                        break;
                    }
                    if runner < n && !pdf[runner].contains(&id) {
                        pdf[runner].push(id);
                    }
                    match self.ipdom.get(runner).copied().flatten() {
                        Some(d) if d != runner => runner = d,
                        _ => break,
                    }
                }
            }
        }
        pdf
    }

    /// Iterated post-dominance frontier of a set of blocks: the fixpoint
    /// `PDF+(S) = PDF(S ∪ PDF+(S))`. This is the divergence-point set of
    /// PARCOACH's Algorithm 1.
    ///
    /// Recomputes the per-block frontiers on every call; when many sets
    /// are queried against one function, compute [`PostDomTree::frontier`]
    /// once and use an [`IpdfEngine`] instead.
    pub fn iterated_frontier(&self, f: &FuncIr, set: &[BlockId]) -> Vec<BlockId> {
        iterated_frontier_from(&self.frontier(f), set)
    }
}

/// The `PDF+` worklist fixpoint over precomputed per-block frontiers.
/// The result is sorted ascending.
pub fn iterated_frontier_from(pdf: &[Vec<BlockId>], set: &[BlockId]) -> Vec<BlockId> {
    let n = pdf.len();
    let mut in_result = vec![false; n];
    let mut queued = vec![false; n];
    let mut work: Vec<BlockId> = Vec::new();
    for &b in set {
        if !queued[b.index()] {
            queued[b.index()] = true;
            work.push(b);
        }
    }
    while let Some(b) = work.pop() {
        for &d in &pdf[b.index()] {
            if !in_result[d.index()] {
                in_result[d.index()] = true;
                if !queued[d.index()] {
                    queued[d.index()] = true;
                    work.push(d);
                }
            }
        }
    }
    let mut out: Vec<BlockId> = (0..n as u32)
        .map(BlockId)
        .filter(|b| in_result[b.index()])
        .collect();
    out.sort_unstable();
    out
}

/// Memoizing iterated-PDF engine: per-block post-dominance frontiers are
/// computed once (by the caller, via [`PostDomTree::frontier`]) and the
/// `PDF+` of each queried *block set* is cached, keyed by the normalized
/// (sorted, deduplicated) set. Two collective events issued from the
/// same blocks share one fixpoint computation.
pub struct IpdfEngine<'a> {
    pdf: &'a [Vec<BlockId>],
    cache: std::collections::HashMap<Vec<BlockId>, Vec<BlockId>>,
    hits: u64,
    misses: u64,
}

impl<'a> IpdfEngine<'a> {
    /// Build an engine over precomputed per-block frontiers.
    pub fn new(pdf: &'a [Vec<BlockId>]) -> IpdfEngine<'a> {
        IpdfEngine {
            pdf,
            cache: std::collections::HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// `PDF+(set)`, served from the cache when the (normalized) set was
    /// queried before. Identical to [`PostDomTree::iterated_frontier`].
    pub fn iterated(&mut self, set: &[BlockId]) -> Vec<BlockId> {
        let mut key: Vec<BlockId> = set.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(cached) = self.cache.get(&key) {
            self.hits += 1;
            return cached.clone();
        }
        let out = iterated_frontier_from(self.pdf, &key);
        self.misses += 1;
        self.cache.insert(key, out.clone());
        out
    }

    /// `(cache hits, cache misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

fn intersect_usize(idom: &[Option<usize>], rpo_pos: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_pos[a] > rpo_pos[b] {
            a = idom[a].expect("processed predecessor has idom");
        }
        while rpo_pos[b] > rpo_pos[a] {
            b = idom[b].expect("processed predecessor has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::func_from_edges;

    /// Naive O(n²) dominator computation for cross-checking.
    fn naive_dominators(f: &FuncIr) -> Vec<Vec<bool>> {
        let n = f.block_count();
        let reach = reachable(f);
        let mut dom = vec![vec![true; n]; n];
        for (i, d) in dom.iter_mut().enumerate() {
            if !reach[i] {
                d.fill(false);
            }
        }
        dom[f.entry.index()].fill(false);
        dom[f.entry.index()][f.entry.index()] = true;
        let preds = f.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for b in f.block_ids() {
                if b == f.entry || !reach[b.index()] {
                    continue;
                }
                let mut new: Vec<bool> = vec![true; n];
                let mut any_pred = false;
                for &p in &preds[b.index()] {
                    if !reach[p.index()] {
                        continue;
                    }
                    any_pred = true;
                    for i in 0..n {
                        new[i] = new[i] && dom[p.index()][i];
                    }
                }
                if !any_pred {
                    new.fill(false);
                }
                new[b.index()] = true;
                if new != dom[b.index()] {
                    dom[b.index()] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    #[test]
    fn diamond_dominators() {
        // 0 → {1,2} → 3
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(BlockId(0)), None);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_dominators() {
        // 0 → 1 → 2 → 1, 2 → 3
        let f = func_from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(2)));
    }

    #[test]
    fn matches_naive_on_irreducible_graph() {
        // Irreducible: 0 → {1,2}, 1 → 2, 2 → 1, 1 → 3, 2 → 3 ... build
        // with ≤2 successors per node:
        // 0→1, 0→2, 1→2... need 1→{2,3}, 2→{1,3}.
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let dt = DomTree::compute(&f);
        let naive = naive_dominators(&f);
        for a in f.block_ids() {
            for b in f.block_ids() {
                assert_eq!(
                    dt.dominates(a, b),
                    naive[b.index()][a.index()],
                    "dominates({a},{b}) mismatch"
                );
            }
        }
    }

    #[test]
    fn postdom_diamond() {
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let pdt = PostDomTree::compute(&f);
        assert_eq!(pdt.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdt.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdt.ipdom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pdt.ipdom(BlockId(3)), None); // exit
        assert!(pdt.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdt.post_dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn postdom_multiple_exits() {
        // 0 → {1,2}; both return: neither post-dominates 0.
        let f = func_from_edges(3, &[(0, 1), (0, 2)]);
        let pdt = PostDomTree::compute(&f);
        assert_eq!(pdt.ipdom(BlockId(0)), None);
        assert!(!pdt.post_dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn pdf_of_branch_arm() {
        // 0 → {1,2} → 3; PDF(1) = {0}, PDF(2) = {0}, PDF(3) = {}.
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let pdt = PostDomTree::compute(&f);
        let pdf = pdt.frontier(&f);
        assert_eq!(pdf[1], vec![BlockId(0)]);
        assert_eq!(pdf[2], vec![BlockId(0)]);
        assert!(pdf[3].is_empty());
        assert!(pdf[0].is_empty());
    }

    #[test]
    fn iterated_pdf_nested_conditionals() {
        // 0 → {1, 5}; 1 → {2, 3}; 2 → 4; 3 → 4; 4 → 5
        // A block set {2} should iterate: PDF(2)={1}, PDF(1)={0} ⇒ {0,1}.
        let f = func_from_edges(6, &[(0, 1), (0, 5), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)]);
        let pdt = PostDomTree::compute(&f);
        let ipdf = pdt.iterated_frontier(&f, &[BlockId(2)]);
        assert_eq!(ipdf, vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn pdf_empty_for_post_dominating_node() {
        // A node on every path (e.g. the join) has empty PDF+: no
        // conditional controls whether it executes.
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let pdt = PostDomTree::compute(&f);
        let ipdf = pdt.iterated_frontier(&f, &[BlockId(3)]);
        assert!(ipdf.is_empty());
    }

    #[test]
    fn pdf_loop_condition() {
        // 0 → 1(head) → {2(body), 3(exit)}; 2 → 1.
        // The loop head controls how many times the body runs: PDF+(2)
        // must contain 1.
        let f = func_from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 1)]);
        let pdt = PostDomTree::compute(&f);
        let ipdf = pdt.iterated_frontier(&f, &[BlockId(2)]);
        assert!(
            ipdf.contains(&BlockId(1)),
            "loop head must be in PDF+ of body, got {ipdf:?}"
        );
    }

    #[test]
    fn dominance_frontier_diamond() {
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontier(&f);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
    }

    #[test]
    fn ipdf_engine_matches_uncached_path() {
        // Nested conditionals + a loop: engine results (cached and not)
        // must equal the recompute-per-set path for every seed set.
        let f = func_from_edges(
            7,
            &[
                (0, 1),
                (0, 5),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 5),
            ],
        );
        let pdt = PostDomTree::compute(&f);
        let pdf = pdt.frontier(&f);
        let mut engine = IpdfEngine::new(&pdf);
        let sets: Vec<Vec<BlockId>> = vec![
            vec![BlockId(2)],
            vec![BlockId(6)],
            vec![BlockId(2), BlockId(3)],
            vec![BlockId(3), BlockId(2)], // permutation: same normalized key
            vec![BlockId(2), BlockId(2)], // duplicate: same normalized key
        ];
        for set in &sets {
            assert_eq!(
                engine.iterated(set),
                pdt.iterated_frontier(&f, set),
                "engine diverges on {set:?}"
            );
        }
        let (hits, misses) = engine.stats();
        assert_eq!(hits, 2, "permuted/duplicated sets must hit the cache");
        assert_eq!(misses, 3);
    }

    #[test]
    fn postdom_handles_infinite_loop() {
        // 0 → 1 → 2 → 1: terminal cycle with no return.
        let f = func_from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
        let pdt = PostDomTree::compute(&f);
        // Must not panic / loop; reachable nodes participate.
        let _ = pdt.frontier(&f);
        let _ = pdt.iterated_frontier(&f, &[BlockId(2)]);
    }
}
