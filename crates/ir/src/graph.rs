//! Small graph utilities over the CFG: reachability, traversal orders,
//! and a reverse-graph view used by the post-dominance machinery.

use crate::func::FuncIr;
use crate::types::BlockId;

/// Blocks reachable from the entry, as a dense bool table.
pub fn reachable(f: &FuncIr) -> Vec<bool> {
    let mut seen = vec![false; f.block_count()];
    let mut stack = vec![f.entry];
    seen[f.entry.index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse post-order of the reachable blocks (classic iterative DFS).
///
/// RPO is the canonical iteration order for forward dataflow problems —
/// the parallelism-word propagation in `parcoach-core` converges in one
/// pass over structured CFGs when visited in RPO.
pub fn reverse_post_order(f: &FuncIr) -> Vec<BlockId> {
    let n = f.block_count();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post = Vec::with_capacity(n);
    // Iterative DFS keeping an explicit successor cursor per frame;
    // `Terminator::successor` serves edges by index so no frame
    // allocates a successor list.
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    state[f.entry.index()] = 1;
    stack.push((f.entry, 0));
    while let Some((b, cursor)) = stack.last_mut() {
        if let Some(s) = f.block(*b).term.successor(*cursor) {
            *cursor += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            post.push(*b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Post-order of reachable blocks (reverse of [`reverse_post_order`]).
pub fn post_order(f: &FuncIr) -> Vec<BlockId> {
    let mut rpo = reverse_post_order(f);
    rpo.reverse();
    rpo
}

/// An explicit reverse view of the CFG with a *virtual exit node*.
///
/// Post-dominance is dominance on the reverse CFG. Real functions may
/// have several `Return` blocks, and blocks on infinite loops may not
/// reach any return at all; the virtual exit is a fresh node that every
/// return block (and, to keep the analysis total, every reachable
/// terminal cycle) points to.
#[derive(Debug)]
pub struct ReverseCfg {
    /// Successor lists in the reverse graph (i.e. original predecessors),
    /// indexed by block, with `virtual_exit` as the last index.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists in the reverse graph (original successors).
    pub preds: Vec<Vec<usize>>,
    /// Index of the virtual exit node (== original block count).
    pub virtual_exit: usize,
}

impl ReverseCfg {
    /// Build the reverse view of `f`.
    pub fn build(f: &FuncIr) -> ReverseCfg {
        let n = f.block_count();
        let virtual_exit = n;
        let mut fwd_succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (id, b) in f.iter_blocks() {
            let ss = b.term.successors();
            if ss.is_empty() {
                // Return (or Unreachable) → edge to the virtual exit.
                fwd_succs[id.index()].push(virtual_exit);
            } else {
                for s in ss {
                    fwd_succs[id.index()].push(s.index());
                }
            }
        }
        // Terminal cycles (infinite loops) never reach the exit; attach
        // one representative node of each such SCC to the exit so every
        // reachable node participates in post-dominance. We use a simple
        // "cannot reach exit" sweep.
        let mut reaches_exit = vec![false; n + 1];
        reaches_exit[virtual_exit] = true;
        // Fixpoint: propagate backwards.
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if !reaches_exit[v] && fwd_succs[v].iter().any(|&s| reaches_exit[s]) {
                    reaches_exit[v] = true;
                    changed = true;
                }
            }
        }
        let reach = reachable(f);
        for v in 0..n {
            if reach[v] && !reaches_exit[v] {
                // Part of (or trapped behind) a terminal cycle: wire it to
                // the exit and re-propagate lazily.
                fwd_succs[v].push(virtual_exit);
                let mut changed = true;
                while changed {
                    changed = false;
                    for u in 0..n {
                        if !reaches_exit[u] && fwd_succs[u].iter().any(|&s| reaches_exit[s]) {
                            reaches_exit[u] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        // Reverse the edges.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (v, ss) in fwd_succs.iter().enumerate() {
            for &s in ss {
                succs[s].push(v); // reverse edge s → v
                preds[v].push(s);
            }
        }
        ReverseCfg {
            succs,
            preds,
            virtual_exit,
        }
    }
}

/// Test helper: build a function from an adjacency list; blocks with no
/// successors return, one successor goto, two successors branch. Exposed
/// crate-wide for the dom/loops unit tests and to downstream dev-tests.
pub fn func_from_edges(n: usize, edges: &[(u32, u32)]) -> FuncIr {
    use crate::func::BasicBlock;
    use crate::instr::Terminator;
    use crate::types::Value;
    use parcoach_front::ast::Type;
    use parcoach_front::span::Span;

    let mut blocks: Vec<BasicBlock> = (0..n).map(|_| BasicBlock::new()).collect();
    for (i, block) in blocks.iter_mut().enumerate() {
        let succs: Vec<u32> = edges
            .iter()
            .filter(|(a, _)| *a == i as u32)
            .map(|(_, b)| *b)
            .collect();
        block.term = match succs.len() {
            0 => Terminator::Return {
                value: None,
                span: Span::DUMMY,
            },
            1 => Terminator::Goto(BlockId(succs[0])),
            2 => Terminator::Branch {
                cond: Value::bool(true),
                then_bb: BlockId(succs[0]),
                else_bb: BlockId(succs[1]),
                span: Span::DUMMY,
            },
            k => panic!("block {i} has {k} successors; max 2"),
        };
    }
    FuncIr {
        name: "g".into(),
        params: vec![],
        ret: Type::Void,
        reg_types: vec![],
        reg_names: vec![],
        blocks,
        entry: BlockId(0),
        region_count: 0,
        span: Span::DUMMY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability() {
        // 0 → 1 → 2, 3 unreachable
        let f = func_from_edges(4, &[(0, 1), (1, 2)]);
        let r = reachable(&f);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        // Diamond: 0 → {1,2} → 3
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
        assert_eq!(rpo.len(), 4);
        // 3 must come after both 1 and 2.
        let pos = |b: u32| rpo.iter().position(|x| x.0 == b).unwrap();
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
    }

    #[test]
    fn rpo_skips_unreachable() {
        let f = func_from_edges(3, &[(0, 1)]);
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo.len(), 2);
    }

    #[test]
    fn rpo_handles_loops() {
        // 0 → 1 → 2 → 1, 2 → 3
        let f = func_from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
    }

    #[test]
    fn reverse_cfg_virtual_exit() {
        // Two exits: 0 → {1,2}; both return.
        let f = func_from_edges(3, &[(0, 1), (0, 2)]);
        let r = ReverseCfg::build(&f);
        assert_eq!(r.virtual_exit, 3);
        // Virtual exit's reverse-successors are the returns.
        let mut exits = r.succs[r.virtual_exit].clone();
        exits.sort_unstable();
        assert_eq!(exits, vec![1, 2]);
    }

    #[test]
    fn reverse_cfg_infinite_loop_connected() {
        // 0 → 1 → 2 → 1 (no exit from the loop)
        let f = func_from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
        let r = ReverseCfg::build(&f);
        // Some loop node must be wired to the virtual exit so the whole
        // graph participates in post-dominance.
        assert!(
            !r.succs[r.virtual_exit].is_empty(),
            "virtual exit must have at least one incoming node"
        );
    }
}
