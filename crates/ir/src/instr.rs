//! IR instructions, directives and terminators.
//!
//! The IR follows the CFG shape the paper constructs in §2: ordinary
//! straight-line code lives in `Normal` blocks; every OpenMP directive
//! occupies a dedicated block ([`BlockKind::Directive`]); implicit thread
//! barriers get their own explicit nodes ([`Directive::Barrier`] with
//! `implicit = true`).

use crate::types::{Reg, RegionId, Value};
use parcoach_front::ast::{BinOp, CollectiveKind, Intrinsic, ReduceOp, ThreadLevel, Type, UnOp};
use parcoach_front::span::Span;
use std::fmt;

/// MPI operation in IR form (operands are [`Value`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum MpiIr {
    /// `MPI_Init` / `MPI_Init_thread`.
    Init {
        /// Requested thread level (None for plain `MPI_Init`).
        required: Option<ThreadLevel>,
    },
    /// `MPI_Finalize`.
    Finalize,
    /// Any collective operation.
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Payload operand (absent for barrier).
        value: Option<Value>,
        /// Reduction operator for reducing collectives.
        reduce_op: Option<ReduceOp>,
        /// Root operand for rooted collectives.
        root: Option<Value>,
        /// Communicator operand (None = `MPI_COMM_WORLD`).
        comm: Option<Value>,
    },
    /// Blocking (buffered) point-to-point send, checked by the static
    /// p2p matching pass.
    Send {
        /// Payload.
        value: Value,
        /// Destination rank within `comm`.
        dest: Value,
        /// Tag.
        tag: Value,
        /// Communicator operand (None = `MPI_COMM_WORLD`).
        comm: Option<Value>,
    },
    /// Blocking point-to-point receive.
    Recv {
        /// Source rank within `comm`.
        src: Value,
        /// Tag.
        tag: Value,
        /// Communicator operand (None = `MPI_COMM_WORLD`).
        comm: Option<Value>,
    },
    /// The `MPI_COMM_WORLD` handle (written to `dest`).
    CommWorld,
    /// `MPI_Comm_split(parent, color, key)` — collective over `parent`.
    CommSplit {
        /// Parent communicator operand.
        parent: Value,
        /// Partition color.
        color: Value,
        /// Ordering key.
        key: Value,
    },
    /// `MPI_Comm_dup(comm)` — collective over `comm`.
    CommDup {
        /// Duplicated communicator operand.
        comm: Value,
    },
    /// Non-blocking (buffered) send; the destination register receives
    /// a request handle that must be completed by `Wait`/`Waitall`.
    Isend {
        /// Payload.
        value: Value,
        /// Destination rank within `comm`.
        dest: Value,
        /// Tag.
        tag: Value,
        /// Communicator operand (None = `MPI_COMM_WORLD`).
        comm: Option<Value>,
    },
    /// Non-blocking receive post. `src` may be the `MPI_ANY_SOURCE`
    /// sentinel and `tag` the `MPI_ANY_TAG` sentinel
    /// (`parcoach_front::ast::{ANY_SOURCE, ANY_TAG}`).
    Irecv {
        /// Source rank within `comm` (or `ANY_SOURCE`).
        src: Value,
        /// Tag (or `ANY_TAG`).
        tag: Value,
        /// Communicator operand (None = `MPI_COMM_WORLD`).
        comm: Option<Value>,
    },
    /// `MPI_Wait(req)` — block until the request completes; the
    /// destination register (if any) receives the received value.
    Wait {
        /// Request operand.
        request: Value,
    },
    /// `MPI_Waitall(r1, …)` — complete every request, in operand order.
    Waitall {
        /// Request operands.
        requests: Vec<Value>,
    },
}

impl MpiIr {
    /// The collective kind, if this is a collective.
    pub fn collective_kind(&self) -> Option<CollectiveKind> {
        match self {
            MpiIr::Collective { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// True for point-to-point operations: blocking send/recv, the
    /// non-blocking posts and their completions. All of them demand the
    /// MPI thread level of their context (any thread of a team calling
    /// them needs `MPI_THREAD_MULTIPLE`) without being errors there.
    pub fn is_p2p(&self) -> bool {
        matches!(
            self,
            MpiIr::Send { .. }
                | MpiIr::Recv { .. }
                | MpiIr::Isend { .. }
                | MpiIr::Irecv { .. }
                | MpiIr::Wait { .. }
                | MpiIr::Waitall { .. }
        )
    }

    /// True for the non-blocking request operations (posts and waits).
    pub fn is_request_op(&self) -> bool {
        matches!(
            self,
            MpiIr::Isend { .. } | MpiIr::Irecv { .. } | MpiIr::Wait { .. } | MpiIr::Waitall { .. }
        )
    }

    /// Communicator-management collectives (`MPI_Comm_split`,
    /// `MPI_Comm_dup`): dynamically these synchronize like collectives
    /// over their *parent* communicator, so the static phases must
    /// treat them as collective events. Returns the MPI name and the
    /// parent communicator operand.
    pub fn comm_mgmt(&self) -> Option<(&'static str, Value)> {
        match self {
            MpiIr::CommSplit { parent, .. } => Some(("MPI_Comm_split", *parent)),
            MpiIr::CommDup { comm } => Some(("MPI_Comm_dup", *comm)),
            _ => None,
        }
    }
}

/// `CC` color of `MPI_Comm_split` (data-collective colors are
/// 1..=10; 0 is the return/exit color).
pub const COLOR_COMM_SPLIT: u32 = 11;
/// `CC` color of `MPI_Comm_dup`.
pub const COLOR_COMM_DUP: u32 = 12;

/// Dynamic checks inserted by the PARCOACH instrumentation pass (§3 of the
/// paper). They are ordinary instructions so the executor runs them
/// in-line; an un-instrumented program contains none of them.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOp {
    /// The `CC` collective-verification call placed *before* an MPI
    /// collective (including the communicator-management collectives):
    /// control all-reduce of `color` over the guarded collective's
    /// communicator; mismatch aborts.
    CollectiveCc {
        /// Color communicated (collective kind color, or
        /// [`COLOR_COMM_SPLIT`]/[`COLOR_COMM_DUP`]).
        color: u32,
        /// Communicator of the guarded collective (None = world). The CC
        /// runs on the *same* communicator so collectives on unrelated
        /// communicators can never be compared against each other.
        comm: Option<Value>,
        /// Source location of the guarded collective.
        span: Span,
    },
    /// The `CC` call placed before `return` statements (color 0) so ranks
    /// that leave the function while others still expect collectives are
    /// caught. Wrapped in `single` semantics when in a parallel region.
    ReturnCc {
        /// Source location of the return.
        span: Span,
    },
    /// Verify the executing context is monothreaded (inserted at `S_ipw`
    /// nodes — collectives, including communicator management, whose
    /// parallelism word could not be proven in `L` statically).
    AssertMonothread {
        /// MPI name of the guarded operation (for error messages).
        what: &'static str,
        /// Source location.
        span: Span,
    },
    /// Concurrency counter entry for an `S_cc` node (possibly-concurrent
    /// monothreaded region containing collectives). Aborts when two
    /// regions with the same `site` are active simultaneously.
    ConcEnter {
        /// Static site id (one per region pair detected).
        site: u32,
        /// Source location of the region.
        span: Span,
    },
    /// Concurrency counter exit, matching [`CheckOp::ConcEnter`].
    ConcExit {
        /// Static site id.
        site: u32,
    },
    /// Point-to-point epoch census, placed before `MPI_Finalize` in
    /// functions with suspect p2p traffic: a control collective
    /// exchanging the per-communicator send/receive counters (the
    /// paper's `CC` protocol extended to point-to-point; the epoch ends
    /// at the communicator's final synchronization point, where all
    /// buffered traffic must have been received). Unbalanced totals
    /// abort with the per-communicator counts.
    P2pEpoch {
        /// Source location of the guarded finalize.
        span: Span,
    },
}

/// A straight-line instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dest = src` (src may be a constant).
    Copy {
        /// Destination register.
        dest: Reg,
        /// Source operand.
        src: Value,
    },
    /// `dest = op src`.
    Unary {
        /// Destination.
        dest: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Value,
    },
    /// `dest = lhs op rhs`.
    Binary {
        /// Destination.
        dest: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
        /// Source span (division by zero etc. reports here).
        span: Span,
    },
    /// `dest = array(len, init)`.
    ArrayNew {
        /// Destination.
        dest: Reg,
        /// Element count.
        len: Value,
        /// Fill value.
        init: Value,
        /// Element type.
        elem: Type,
        /// Source span.
        span: Span,
    },
    /// `dest = arr[idx]`.
    Load {
        /// Destination.
        dest: Reg,
        /// Array register.
        arr: Reg,
        /// Index operand.
        idx: Value,
        /// Source span (bounds errors report here).
        span: Span,
    },
    /// `arr[idx] = value`.
    Store {
        /// Array register.
        arr: Reg,
        /// Index operand.
        idx: Value,
        /// Stored value.
        value: Value,
        /// Source span.
        span: Span,
    },
    /// `dest = intrinsic(args…)` for pure intrinsics (`sqrt`, `len`, …)
    /// and runtime queries (`rank`, `thread_num`, …).
    Intrinsic {
        /// Destination.
        dest: Reg,
        /// Which intrinsic.
        intr: Intrinsic,
        /// Arguments.
        args: Vec<Value>,
    },
    /// Call a user function.
    Call {
        /// Destination (None for void functions).
        dest: Option<Reg>,
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Value>,
        /// Call-site span.
        span: Span,
    },
    /// An MPI operation.
    Mpi {
        /// Destination (None for void ops).
        dest: Option<Reg>,
        /// The operation.
        op: MpiIr,
        /// Source span — the paper's warnings and run-time error messages
        /// cite this line.
        span: Span,
    },
    /// `print(args…)`.
    Print {
        /// Values to print.
        args: Vec<Value>,
    },
    /// A dynamic verification check (instrumentation only).
    Check(CheckOp),
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Copy { dest, .. }
            | Instr::Unary { dest, .. }
            | Instr::Binary { dest, .. }
            | Instr::ArrayNew { dest, .. }
            | Instr::Load { dest, .. }
            | Instr::Intrinsic { dest, .. } => Some(*dest),
            Instr::Call { dest, .. } | Instr::Mpi { dest, .. } => *dest,
            Instr::Store { .. } | Instr::Print { .. } | Instr::Check(_) => None,
        }
    }

    /// The collective kind if this instruction is an MPI collective.
    pub fn collective_kind(&self) -> Option<CollectiveKind> {
        match self {
            Instr::Mpi { op, .. } => op.collective_kind(),
            _ => None,
        }
    }

    /// Span of the instruction if it carries one.
    pub fn span(&self) -> Option<Span> {
        match self {
            Instr::Binary { span, .. }
            | Instr::ArrayNew { span, .. }
            | Instr::Load { span, .. }
            | Instr::Store { span, .. }
            | Instr::Call { span, .. }
            | Instr::Mpi { span, .. } => Some(*span),
            Instr::Check(c) => match c {
                CheckOp::CollectiveCc { span, .. }
                | CheckOp::ReturnCc { span }
                | CheckOp::AssertMonothread { span, .. }
                | CheckOp::ConcEnter { span, .. }
                | CheckOp::P2pEpoch { span } => Some(*span),
                CheckOp::ConcExit { .. } => None,
            },
            _ => None,
        }
    }
}

/// The OpenMP-model work-sharing flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkshareKind {
    /// `pfor` — iterations divided among the team.
    PFor,
    /// `sections` — each section given to one thread.
    Sections,
}

/// OpenMP directives. Each directive occupies its own basic block
/// ([`BlockKind::Directive`]), exactly as the paper's modified CFG does.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Fork a team. Runtime: threads of the new team each execute the
    /// successor subgraph; the matching [`Directive::ParallelEnd`] joins.
    ParallelBegin {
        /// Region instance id (the `i` of `P_i`).
        region: RegionId,
        /// Requested team size (None → runtime default).
        num_threads: Option<Value>,
        /// Source span of the construct.
        span: Span,
    },
    /// Join the team forked by the matching begin.
    ParallelEnd {
        /// Matching region id.
        region: RegionId,
    },
    /// `single` entry. Runtime: writes `true` into `chosen` for exactly
    /// one thread of the team; the block's terminator branches on it.
    SingleBegin {
        /// Region instance id (the `i` of `S_i`).
        region: RegionId,
        /// Whether the trailing implicit barrier is suppressed.
        nowait: bool,
        /// Receives "this thread executes the region".
        chosen: Reg,
        /// Source span.
        span: Span,
    },
    /// `single` exit (before the implicit barrier, if any).
    SingleEnd {
        /// Matching region id.
        region: RegionId,
    },
    /// `master` entry: `chosen = (thread_num() == 0)`. No barrier at end.
    MasterBegin {
        /// Region instance id (an `S_i` token, like single).
        region: RegionId,
        /// Receives "this thread is the master".
        chosen: Reg,
        /// Source span.
        span: Span,
    },
    /// `master` exit.
    MasterEnd {
        /// Matching region id.
        region: RegionId,
    },
    /// `critical` entry: acquires the (global) critical lock.
    CriticalBegin {
        /// Region instance id.
        region: RegionId,
        /// Source span.
        span: Span,
    },
    /// `critical` exit: releases the lock.
    CriticalEnd {
        /// Matching region id.
        region: RegionId,
    },
    /// Work-sharing entry (pfor / sections).
    WorkshareBegin {
        /// Region instance id.
        region: RegionId,
        /// Flavour.
        kind: WorkshareKind,
        /// Whether the trailing implicit barrier is suppressed.
        nowait: bool,
        /// Source span.
        span: Span,
    },
    /// Work-sharing exit (before the implicit barrier, if any).
    WorkshareEnd {
        /// Matching region id.
        region: RegionId,
    },
    /// `pfor` chunk setup: assigns this thread's first iteration to `var`
    /// and its end bound to `chunk_end`, from the full range `[lo, hi)`.
    PForInit {
        /// Owning workshare region.
        region: RegionId,
        /// Loop variable register.
        var: Reg,
        /// This thread's chunk end.
        chunk_end: Reg,
        /// Full-range lower bound.
        lo: Value,
        /// Full-range upper bound.
        hi: Value,
    },
    /// `sections` dispatch for one section: `chosen = (section `index`
    /// assigned to this thread)`. Each section is its own
    /// single-threaded region (an `S_i` token, like `single`): exactly
    /// one thread executes it, and sibling sections may run concurrently.
    SectionBegin {
        /// This section's own region id (the `i` of its `S_i` token).
        region: RegionId,
        /// The owning `sections` workshare region.
        parent: RegionId,
        /// Zero-based section index.
        index: u32,
        /// Receives "this thread runs the section".
        chosen: Reg,
    },
    /// End of one section body (pops the section's `S_i`).
    SectionEnd {
        /// Matching section region id.
        region: RegionId,
    },
    /// A thread barrier. `implicit` distinguishes the barrier nodes the
    /// lowering adds at region ends from source-level `barrier;`.
    Barrier {
        /// True for barriers synthesized at region ends.
        implicit: bool,
        /// The region whose end generated it (None for explicit).
        region: Option<RegionId>,
        /// Source span (construct span for implicit barriers).
        span: Span,
    },
}

impl Directive {
    /// The region id this directive belongs to, if any.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            Directive::ParallelBegin { region, .. }
            | Directive::ParallelEnd { region }
            | Directive::SingleBegin { region, .. }
            | Directive::SingleEnd { region }
            | Directive::MasterBegin { region, .. }
            | Directive::MasterEnd { region }
            | Directive::CriticalBegin { region, .. }
            | Directive::CriticalEnd { region }
            | Directive::WorkshareBegin { region, .. }
            | Directive::WorkshareEnd { region }
            | Directive::PForInit { region, .. }
            | Directive::SectionBegin { region, .. }
            | Directive::SectionEnd { region } => Some(*region),
            Directive::Barrier { region, .. } => *region,
        }
    }

    /// Short mnemonic for display / DOT output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Directive::ParallelBegin { .. } => "parallel.begin",
            Directive::ParallelEnd { .. } => "parallel.end",
            Directive::SingleBegin { .. } => "single.begin",
            Directive::SingleEnd { .. } => "single.end",
            Directive::MasterBegin { .. } => "master.begin",
            Directive::MasterEnd { .. } => "master.end",
            Directive::CriticalBegin { .. } => "critical.begin",
            Directive::CriticalEnd { .. } => "critical.end",
            Directive::WorkshareBegin { .. } => "workshare.begin",
            Directive::WorkshareEnd { .. } => "workshare.end",
            Directive::PForInit { .. } => "pfor.init",
            Directive::SectionBegin { .. } => "section.begin",
            Directive::SectionEnd { .. } => "section.end",
            Directive::Barrier { implicit: true, .. } => "barrier.implicit",
            Directive::Barrier {
                implicit: false, ..
            } => "barrier",
        }
    }

    /// True for `*Begin` directives that open a region.
    pub fn opens_region(&self) -> bool {
        matches!(
            self,
            Directive::ParallelBegin { .. }
                | Directive::SingleBegin { .. }
                | Directive::MasterBegin { .. }
                | Directive::CriticalBegin { .. }
                | Directive::WorkshareBegin { .. }
                | Directive::SectionBegin { .. }
        )
    }

    /// True for `*End` directives that close a region.
    pub fn closes_region(&self) -> bool {
        matches!(
            self,
            Directive::ParallelEnd { .. }
                | Directive::SingleEnd { .. }
                | Directive::MasterEnd { .. }
                | Directive::CriticalEnd { .. }
                | Directive::WorkshareEnd { .. }
                | Directive::SectionEnd { .. }
        )
    }
}

/// What a basic block *is*: ordinary code or a directive node.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockKind {
    /// Ordinary straight-line code.
    Normal,
    /// An OpenMP directive node (paper: "OpenMP directives are put into
    /// separate basic blocks").
    Directive(Directive),
}

impl BlockKind {
    /// The directive, if this is a directive block.
    pub fn directive(&self) -> Option<&Directive> {
        match self {
            BlockKind::Normal => None,
            BlockKind::Directive(d) => Some(d),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(crate::types::BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Condition operand (bool).
        cond: Value,
        /// Target when true.
        then_bb: crate::types::BlockId,
        /// Target when false.
        else_bb: crate::types::BlockId,
        /// Span of the controlling condition — PARCOACH warnings point
        /// at this.
        span: Span,
    },
    /// Return from the function.
    Return {
        /// Returned operand, if non-void.
        value: Option<Value>,
        /// Span of the return site.
        span: Span,
    },
    /// Placeholder during construction; the verifier rejects it.
    Unreachable,
}

impl Terminator {
    /// Successor block ids (empty for returns).
    pub fn successors(&self) -> Vec<crate::types::BlockId> {
        match self {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// The `i`-th successor, without allocating (a terminator has at
    /// most two). `None` once `i` runs past the out-degree — the shape
    /// CFG walks want for an explicit-cursor DFS.
    pub fn successor(&self, i: usize) -> Option<crate::types::BlockId> {
        match (self, i) {
            (Terminator::Goto(t), 0) => Some(*t),
            (Terminator::Branch { then_bb, .. }, 0) => Some(*then_bb),
            (Terminator::Branch { else_bb, .. }, 1) => Some(*else_bb),
            _ => None,
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Goto(t) => write!(f, "goto {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                ..
            } => write!(f, "br {cond} ? {then_bb} : {else_bb}"),
            Terminator::Return { value: None, .. } => write!(f, "ret"),
            Terminator::Return { value: Some(v), .. } => write!(f, "ret {v}"),
            Terminator::Unreachable => write!(f, "unreachable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockId;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Goto(BlockId(3)).successors(), vec![BlockId(3)]);
        let br = Terminator::Branch {
            cond: Value::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            span: Span::DUMMY,
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Return {
            value: None,
            span: Span::DUMMY
        }
        .successors()
        .is_empty());
    }

    #[test]
    fn directive_open_close() {
        let d = Directive::ParallelBegin {
            region: RegionId(0),
            num_threads: None,
            span: Span::DUMMY,
        };
        assert!(d.opens_region());
        assert!(!d.closes_region());
        let e = Directive::ParallelEnd {
            region: RegionId(0),
        };
        assert!(e.closes_region());
        assert_eq!(e.region(), Some(RegionId(0)));
        let b = Directive::Barrier {
            implicit: false,
            region: None,
            span: Span::DUMMY,
        };
        assert!(!b.opens_region() && !b.closes_region());
        assert_eq!(b.region(), None);
    }

    #[test]
    fn instr_dest() {
        let i = Instr::Copy {
            dest: Reg(1),
            src: Value::int(3),
        };
        assert_eq!(i.dest(), Some(Reg(1)));
        let p = Instr::Print { args: vec![] };
        assert_eq!(p.dest(), None);
    }

    #[test]
    fn collective_kind_extraction() {
        let i = Instr::Mpi {
            dest: None,
            op: MpiIr::Collective {
                kind: CollectiveKind::Barrier,
                value: None,
                reduce_op: None,
                root: None,
                comm: None,
            },
            span: Span::DUMMY,
        };
        assert_eq!(i.collective_kind(), Some(CollectiveKind::Barrier));
        let j = Instr::Mpi {
            dest: None,
            op: MpiIr::Finalize,
            span: Span::DUMMY,
        };
        assert_eq!(j.collective_kind(), None);
    }
}
