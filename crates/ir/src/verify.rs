//! IR verifier: structural invariants the analysis and executor rely on.
//!
//! Run after lowering (and again after instrumentation) to catch compiler
//! bugs early instead of as mysterious analysis results.

use crate::func::{FuncIr, Module};
use crate::graph::reachable;
use crate::instr::{BlockKind, Directive, Instr, Terminator};
use crate::types::BlockId;

/// A verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block where the problem is.
    pub block: BlockId,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}: {}", self.func, self.block, self.message)
    }
}

/// Verify a whole module. Empty result = OK.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    m.funcs.iter().flat_map(verify_func).collect()
}

/// Verify a single function.
pub fn verify_func(f: &FuncIr) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let mut err = |block: BlockId, message: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            block,
            message,
        });
    };
    let n = f.block_count();

    // Pass 0: terminator targets must be in range before any graph
    // traversal is safe.
    for (id, b) in f.iter_blocks() {
        for s in b.term.successors() {
            if s.index() >= n {
                err(id, format!("terminator targets out-of-range block {s}"));
            }
        }
    }
    if !errs.is_empty() {
        return errs;
    }
    let mut err = |block: BlockId, message: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            block,
            message,
        });
    };
    let reach = reachable(f);

    for (id, b) in f.iter_blocks() {
        // Reachable blocks must be terminated.
        if reach[id.index()] && matches!(b.term, Terminator::Unreachable) {
            err(id, "reachable block has no terminator".into());
        }
        // Register indices in range.
        let max_reg = f.reg_types.len();
        let check_val = |v: &crate::types::Value| match v {
            crate::types::Value::Reg(r) => r.index() < max_reg,
            crate::types::Value::Const(_) => true,
        };
        for i in &b.instrs {
            let ok = match i {
                Instr::Copy { dest, src } => dest.index() < max_reg && check_val(src),
                Instr::Unary { dest, src, .. } => dest.index() < max_reg && check_val(src),
                Instr::Binary { dest, lhs, rhs, .. } => {
                    dest.index() < max_reg && check_val(lhs) && check_val(rhs)
                }
                Instr::ArrayNew {
                    dest, len, init, ..
                } => dest.index() < max_reg && check_val(len) && check_val(init),
                Instr::Load { dest, arr, idx, .. } => {
                    dest.index() < max_reg && arr.index() < max_reg && check_val(idx)
                }
                Instr::Store {
                    arr, idx, value, ..
                } => arr.index() < max_reg && check_val(idx) && check_val(value),
                Instr::Intrinsic { dest, args, .. } => {
                    dest.index() < max_reg && args.iter().all(check_val)
                }
                Instr::Call { dest, args, .. } => {
                    dest.is_none_or(|d| d.index() < max_reg) && args.iter().all(check_val)
                }
                Instr::Mpi { dest, .. } => dest.is_none_or(|d| d.index() < max_reg),
                Instr::Print { args } => args.iter().all(check_val),
                Instr::Check(_) => true,
            };
            if !ok {
                err(
                    id,
                    format!("instruction references out-of-range register: {i:?}"),
                );
            }
        }
        // Directive blocks carry no user instructions (checks are allowed:
        // the instrumentation pass may guard directive nodes).
        if let BlockKind::Directive(_) = &b.kind {
            if b.instrs.iter().any(|i| !matches!(i, Instr::Check(_))) {
                err(id, "directive block contains non-check instructions".into());
            }
        }
    }

    // Region begin/end pairing along every path: walk the CFG carrying a
    // region stack; every reachable path must see perfectly nested
    // open/close pairs (this is the paper's "perfectly nested regions"
    // invariant, which lowering must establish).
    verify_region_nesting(f, &mut errs);

    errs
}

/// Region-stack state per block for the nesting walk.
type RegionStack = Vec<u32>;

fn verify_region_nesting(f: &FuncIr, errs: &mut Vec<VerifyError>) {
    let n = f.block_count();
    let mut state: Vec<Option<RegionStack>> = vec![None; n];
    let mut work = vec![f.entry];
    state[f.entry.index()] = Some(Vec::new());
    while let Some(b) = work.pop() {
        let mut stack = state[b.index()].clone().expect("queued with state");
        let blk = f.block(b);
        // `single`/`master`/`section` entries are *conditional*: only the
        // chosen thread enters the region, so their token is pushed on
        // the then-edge, not in the directive block itself.
        let mut conditional_open: Option<u32> = None;
        if let BlockKind::Directive(d) = &blk.kind {
            if d.opens_region() {
                let r = d.region().expect("open directive has region").0;
                match d {
                    Directive::SingleBegin { .. }
                    | Directive::MasterBegin { .. }
                    | Directive::SectionBegin { .. } => conditional_open = Some(r),
                    _ => stack.push(r),
                }
            } else if d.closes_region() {
                let r = d.region().expect("close directive has region").0;
                match stack.pop() {
                    Some(top) if top == r => {}
                    Some(top) => errs.push(VerifyError {
                        func: f.name.clone(),
                        block: b,
                        message: format!(
                            "region end r{r} does not match innermost open region r{top}"
                        ),
                    }),
                    None => errs.push(VerifyError {
                        func: f.name.clone(),
                        block: b,
                        message: format!("region end r{r} with no open region"),
                    }),
                }
            }
        }
        if matches!(blk.term, Terminator::Return { .. }) && !stack.is_empty() {
            errs.push(VerifyError {
                func: f.name.clone(),
                block: b,
                message: format!("return with {} region(s) still open", stack.len()),
            });
        }
        let successor_states: Vec<(BlockId, RegionStack)> = match (&blk.term, conditional_open) {
            (
                Terminator::Branch {
                    then_bb, else_bb, ..
                },
                Some(r),
            ) => {
                let mut entered = stack.clone();
                entered.push(r);
                vec![(*then_bb, entered), (*else_bb, stack.clone())]
            }
            (_, Some(r)) => {
                // A conditional opener without a branch terminator is a
                // lowering bug.
                errs.push(VerifyError {
                    func: f.name.clone(),
                    block: b,
                    message: format!("conditional region opener r{r} must end in a branch"),
                });
                blk.term
                    .successors()
                    .into_iter()
                    .map(|s| (s, stack.clone()))
                    .collect()
            }
            _ => blk
                .term
                .successors()
                .into_iter()
                .map(|s| (s, stack.clone()))
                .collect(),
        };
        for (s, st) in successor_states {
            match &state[s.index()] {
                None => {
                    state[s.index()] = Some(st);
                    work.push(s);
                }
                Some(existing) => {
                    if existing != &st {
                        // Two paths reach `s` with different region
                        // nesting — the structured lowering must never
                        // produce this.
                        errs.push(VerifyError {
                            func: f.name.clone(),
                            block: s,
                            message: format!(
                                "inconsistent region nesting at join: {existing:?} vs {st:?}"
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use parcoach_front::parse_and_check;

    fn lower_ok(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("source must check");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn clean_programs_verify() {
        for src in [
            "fn main() { let x = 1; }",
            "fn main() { parallel { single { MPI_Barrier(); } } }",
            "fn main() { parallel num_threads(4) { pfor (i in 0..10) { let x = i; } } }",
            "fn main() { if (rank() == 0) { MPI_Barrier(); } }",
            "fn main() { parallel { sections { section { } section { } } } }",
            "fn f() -> int { return 3; } fn main() { let a = f(); while (a > 0) { a = a - 1; } }",
            "fn main() { parallel { master { } critical { } barrier; } }",
        ] {
            let m = lower_ok(src);
            let errs = verify_module(&m);
            assert!(errs.is_empty(), "{src}\n{errs:?}");
        }
    }

    #[test]
    fn detects_unterminated_block() {
        let mut m = lower_ok("fn main() { let x = 1; }");
        m.funcs[0].blocks[0].term = Terminator::Unreachable;
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("no terminator")));
    }

    #[test]
    fn detects_bad_target() {
        let mut m = lower_ok("fn main() { let x = 1; }");
        m.funcs[0].blocks[0].term = Terminator::Goto(BlockId(99));
        let errs = verify_module(&m);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("out-of-range block")));
    }

    #[test]
    fn detects_unbalanced_regions() {
        let mut m = lower_ok("fn main() { parallel { let x = 1; } }");
        // Corrupt: drop the ParallelEnd directive.
        for b in &mut m.funcs[0].blocks {
            if matches!(b.kind, BlockKind::Directive(Directive::ParallelEnd { .. })) {
                b.kind = BlockKind::Normal;
            }
        }
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("region")),
            "expected a region-nesting error, got {errs:?}"
        );
    }

    #[test]
    fn detects_out_of_range_register() {
        let mut m = lower_ok("fn main() { let x = 1; }");
        m.funcs[0].blocks[0].instrs.push(Instr::Copy {
            dest: crate::types::Reg(999),
            src: crate::types::Value::int(0),
        });
        let errs = verify_module(&m);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("out-of-range register")));
    }
}
