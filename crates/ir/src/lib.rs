//! # parcoach-ir — CFG intermediate representation
//!
//! Lowers checked MiniHPC programs to the control-flow-graph form the
//! paper's analysis operates on (§2):
//!
//! * three-address instructions over virtual registers;
//! * **every OpenMP directive in its own basic block** and **explicit
//!   nodes for implicit barriers** — the two CFG modifications the paper
//!   makes on top of the original PARCOACH;
//! * dominator / post-dominator trees, dominance frontiers and the
//!   iterated post-dominance frontier used by PARCOACH's Algorithm 1;
//! * natural-loop info for the self-concurrency check;
//! * a structural verifier and Graphviz export.
//!
//! ```
//! use parcoach_front::parse_and_check;
//! use parcoach_ir::{lower::lower_program, dom::PostDomTree};
//!
//! let unit = parse_and_check("t.mh", "fn main() { if (rank() == 0) { MPI_Barrier(); } }")
//!     .expect("valid");
//! let module = lower_program(&unit.program, &unit.signatures);
//! let main = module.main().unwrap();
//! let pdt = PostDomTree::compute(main);
//! let collectives = main.collective_blocks();
//! // The conditional on rank() shows up in the iterated PDF:
//! assert!(!pdt.iterated_frontier(main, &collectives).is_empty());
//! ```

pub mod dom;
pub mod dot;
pub mod edit;
pub mod func;
pub mod graph;
pub mod instr;
pub mod loops;
pub mod lower;
pub mod opt;
pub mod types;
pub mod verify;

pub use dom::{DomTree, PostDomTree};
pub use edit::shift_spans;
pub use func::{BasicBlock, FuncIr, Module};
pub use instr::{BlockKind, CheckOp, Directive, Instr, MpiIr, Terminator, WorkshareKind};
pub use loops::{LoopInfo, NaturalLoop};
pub use lower::lower_program;
pub use types::{BlockId, Const, Reg, RegionId, Value};
pub use verify::{verify_func, verify_module, VerifyError};
