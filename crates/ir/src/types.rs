//! Core identifier and operand types for the IR.

use parcoach_front::ast::Type;
use std::fmt;

/// A virtual register (three-address temporary or named local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Index into per-function register tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block id, dense per function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Id of an OpenMP region *instance* within a function.
///
/// This is the `i` of the paper's `P_i` / `S_i` tokens: "parallel regions
/// are denoted by `P i`, with `i` the id of the node with the OpenMP
/// construct".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
}

impl Const {
    /// Static type of the constant.
    pub fn ty(self) -> Type {
        match self {
            Const::Int(_) => Type::Int,
            Const::Float(_) => Type::Float,
            Const::Bool(_) => Type::Bool,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v}"),
            Const::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An instruction operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Read a register.
    Reg(Reg),
    /// Immediate.
    Const(Const),
}

impl Value {
    /// Integer immediate helper.
    pub fn int(v: i64) -> Value {
        Value::Const(Const::Int(v))
    }

    /// Bool immediate helper.
    pub fn bool(v: bool) -> Value {
        Value::Const(Const::Bool(v))
    }

    /// The register read, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Value::Reg(r) => Some(r),
            Value::Const(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Reg(r) => write!(f, "{r}"),
            Value::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Reg> for Value {
    fn from(r: Reg) -> Value {
        Value::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "%3");
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(RegionId(1).to_string(), "r1");
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::Reg(Reg(2)).to_string(), "%2");
    }

    #[test]
    fn const_types() {
        assert_eq!(Const::Int(1).ty(), Type::Int);
        assert_eq!(Const::Float(1.0).ty(), Type::Float);
        assert_eq!(Const::Bool(true).ty(), Type::Bool);
    }

    #[test]
    fn value_as_reg() {
        assert_eq!(Value::Reg(Reg(4)).as_reg(), Some(Reg(4)));
        assert_eq!(Value::int(4).as_reg(), None);
    }
}
