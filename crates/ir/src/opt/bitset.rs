//! Dense fixed-capacity bitset used by the dataflow passes.

/// A fixed-capacity bitset over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Insert an element; returns true if newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let w = i / 64;
        let b = 1u64 << (i % 64);
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Remove an element.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(64), "second insert reports existing");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(100));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        b.insert(1);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        let mut c = BitSet::new(100);
        c.insert(2);
        a.subtract(&c);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_order_and_clear() {
        let mut s = BitSet::new(300);
        for i in [250, 3, 64, 128] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 128, 250]);
        s.clear();
        assert!(s.is_empty());
    }
}
