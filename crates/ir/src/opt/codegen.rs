//! Back-end stand-in: linearization + linear-scan register allocation.
//!
//! A real compiler spends much of its time after the middle end —
//! instruction selection, register allocation, scheduling, emission.
//! This pass provides that cost (and its classic algorithm) honestly:
//! the CFG is linearized in reverse post-order, virtual registers get
//! live intervals, and a linear-scan allocator maps them onto `K`
//! physical registers with spill slots. The result is only used for its
//! invariants (and by the Figure-1 baseline pipeline); we do not emit
//! actual machine code.

use crate::func::FuncIr;
use crate::graph::reverse_post_order;
use crate::opt::liveness::liveness;
use crate::opt::usedef::{directive_defs, directive_uses, instr_uses, term_uses};
use crate::types::Reg;
use std::collections::HashMap;

/// Where a virtual register lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Physical register index `0..K`.
    Phys(u8),
    /// Stack spill slot.
    Spill(u32),
}

/// Live interval of one virtual register over the linearized function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Virtual register.
    pub reg: Reg,
    /// First point (linear index) where the register is live.
    pub start: u32,
    /// Last point where it is live (inclusive).
    pub end: u32,
}

/// Result of register allocation for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location per virtual register (registers never used are absent).
    pub locations: HashMap<Reg, Location>,
    /// Number of spill slots used.
    pub spill_slots: u32,
    /// The intervals that were allocated (sorted by start).
    pub intervals: Vec<Interval>,
}

/// Number of physical registers modelled (x86-64-ish general purpose
/// count after reservations).
pub const PHYS_REGS: u8 = 12;

/// Allocate registers for `f` with the classic linear-scan algorithm
/// (Poletto & Sarkar).
pub fn allocate(f: &FuncIr) -> Allocation {
    let intervals = build_intervals(f);
    let mut locations: HashMap<Reg, Location> = HashMap::new();
    // Active intervals sorted by end point.
    let mut active: Vec<(Interval, u8)> = Vec::new();
    let mut free: Vec<u8> = (0..PHYS_REGS).rev().collect();
    let mut spills = 0u32;

    for iv in &intervals {
        // Expire old intervals.
        active.retain(|(a, phys)| {
            if a.end < iv.start {
                free.push(*phys);
                false
            } else {
                true
            }
        });
        if let Some(phys) = free.pop() {
            locations.insert(iv.reg, Location::Phys(phys));
            active.push((*iv, phys));
            active.sort_by_key(|(a, _)| a.end);
        } else {
            // Spill the interval that ends last (it blocks the register
            // longest).
            let (last, last_phys) = *active.last().expect("active non-empty when no free reg");
            if last.end > iv.end {
                // Steal its register.
                locations.insert(last.reg, Location::Spill(spills));
                spills += 1;
                locations.insert(iv.reg, Location::Phys(last_phys));
                active.pop();
                active.push((*iv, last_phys));
                active.sort_by_key(|(a, _)| a.end);
            } else {
                locations.insert(iv.reg, Location::Spill(spills));
                spills += 1;
            }
        }
    }
    Allocation {
        locations,
        spill_slots: spills,
        intervals,
    }
}

/// Build sorted live intervals from per-block liveness + linear order.
fn build_intervals(f: &FuncIr) -> Vec<Interval> {
    let lv = liveness(f);
    let order = reverse_post_order(f);
    let nr = f.reg_types.len();
    let mut start = vec![u32::MAX; nr];
    let mut end = vec![0u32; nr];
    let mut point = 0u32;
    let touch = |r: usize, point: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        if start[r] == u32::MAX {
            start[r] = point;
        }
        start[r] = start[r].min(point);
        end[r] = end[r].max(point);
    };
    for &b in &order {
        let bi = b.index();
        let block_start = point;
        // Everything live-in exists at the block start.
        for r in lv.live_in[bi].iter() {
            touch(r, block_start, &mut start, &mut end);
        }
        let blk = f.block(b);
        for r in directive_uses(blk).into_iter().chain(directive_defs(blk)) {
            touch(r.index(), point, &mut start, &mut end);
        }
        for i in &blk.instrs {
            point += 1;
            for u in instr_uses(i) {
                touch(u.index(), point, &mut start, &mut end);
            }
            if let Some(d) = i.dest() {
                touch(d.index(), point, &mut start, &mut end);
            }
        }
        point += 1;
        for u in term_uses(&blk.term) {
            touch(u.index(), point, &mut start, &mut end);
        }
        // Everything live-out survives to the block end.
        for r in lv.live_out[bi].iter() {
            touch(r, point, &mut start, &mut end);
        }
        point += 1;
    }
    let mut out: Vec<Interval> = (0..nr)
        .filter(|&r| start[r] != u32::MAX)
        .map(|r| Interval {
            reg: Reg(r as u32),
            start: start[r],
            end: end[r],
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use parcoach_front::parse_and_check;

    fn func(src: &str) -> FuncIr {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        m.main().unwrap().clone()
    }

    #[test]
    fn small_function_no_spills() {
        let f = func("fn main() { let a = 1; let b = a + 2; print(b); }");
        let alloc = allocate(&f);
        assert_eq!(alloc.spill_slots, 0);
        assert!(!alloc.locations.is_empty());
    }

    #[test]
    fn no_two_live_intervals_share_a_register() {
        let f = func(
            "fn main() {
                let a = 1; let b = 2; let c = 3; let d = 4;
                let e = a + b; let g = c + d;
                print(a, b, c, d, e, g);
            }",
        );
        let alloc = allocate(&f);
        // Overlapping intervals must not share a physical register.
        for (i, x) in alloc.intervals.iter().enumerate() {
            for y in alloc.intervals.iter().skip(i + 1) {
                let overlap = x.start <= y.end && y.start <= x.end;
                if !overlap {
                    continue;
                }
                if let (Some(Location::Phys(px)), Some(Location::Phys(py))) =
                    (alloc.locations.get(&x.reg), alloc.locations.get(&y.reg))
                {
                    assert!(
                        px != py,
                        "{:?} and {:?} overlap but share phys reg {px}",
                        x,
                        y
                    );
                }
            }
        }
    }

    #[test]
    fn high_pressure_spills() {
        // More than PHYS_REGS simultaneously-live values.
        let mut body = String::new();
        let n = PHYS_REGS as usize + 6;
        for i in 0..n {
            body.push_str(&format!("let v{i} = {i} + rank();\n"));
        }
        body.push_str("print(");
        body.push_str(
            &(0..n)
                .map(|i| format!("v{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        body.push_str(");");
        let f = func(&format!("fn main() {{ {body} }}"));
        let alloc = allocate(&f);
        assert!(alloc.spill_slots > 0, "expected spills, got {alloc:?}");
    }

    #[test]
    fn intervals_sorted_and_sane() {
        let f = func("fn main() { let i = 0; while (i < 5) { i = i + 1; } print(i); }");
        let alloc = allocate(&f);
        let mut prev = 0;
        for iv in &alloc.intervals {
            assert!(iv.start <= iv.end);
            assert!(iv.start >= prev);
            prev = iv.start;
        }
    }
}
