//! Global liveness analysis (backward dataflow on bitsets).
//!
//! Used by dead-code elimination and by the linear-scan register
//! allocator in `codegen`.

use crate::func::FuncIr;
use crate::graph::post_order;
use crate::opt::bitset::BitSet;
use crate::opt::usedef::{directive_defs, directive_uses, instr_uses, term_uses};

/// Per-block live-in / live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<BitSet>,
    /// Registers live at block exit.
    pub live_out: Vec<BitSet>,
}

/// Compute liveness for `f`.
///
/// Conservative about parallel regions: a register shared into a region
/// is used there, which the per-block use sets already capture; no extra
/// handling is needed because region bodies are ordinary blocks of the
/// same CFG.
pub fn liveness(f: &FuncIr) -> Liveness {
    let nb = f.block_count();
    let nr = f.reg_types.len();
    // Per-block gen (upward-exposed uses) and kill (defs) sets.
    let mut gen: Vec<BitSet> = Vec::with_capacity(nb);
    let mut kill: Vec<BitSet> = Vec::with_capacity(nb);
    for b in &f.blocks {
        let mut g = BitSet::new(nr);
        let mut k = BitSet::new(nr);
        for r in directive_uses(b) {
            if !k.contains(r.index()) {
                g.insert(r.index());
            }
        }
        for r in directive_defs(b) {
            k.insert(r.index());
        }
        for i in &b.instrs {
            for u in instr_uses(i) {
                if !k.contains(u.index()) {
                    g.insert(u.index());
                }
            }
            if let Some(d) = i.dest() {
                k.insert(d.index());
            }
        }
        for u in term_uses(&b.term) {
            if !k.contains(u.index()) {
                g.insert(u.index());
            }
        }
        gen.push(g);
        kill.push(k);
    }

    let mut live_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nr)).collect();
    let mut live_out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(nr)).collect();
    // Iterate in post-order (good order for backward problems).
    let order = post_order(f);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            // live_out = ∪ live_in(succ)
            let succs = f.successors(b);
            let mut out = BitSet::new(nr);
            for s in succs {
                out.union_with(&live_in[s.index()]);
            }
            // live_in = gen ∪ (out − kill)
            let mut inn = out.clone();
            inn.subtract(&kill[bi]);
            inn.union_with(&gen[bi]);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
            if out != live_out[bi] {
                live_out[bi] = out;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use parcoach_front::parse_and_check;

    fn func(src: &str) -> FuncIr {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        m.main().unwrap().clone()
    }

    #[test]
    fn loop_variable_live_around_backedge() {
        let f = func("fn main() { let i = 0; while (i < 10) { i = i + 1; } print(i); }");
        let lv = liveness(&f);
        // The register holding `i` must be live-in at the loop head. Find
        // it via reg_names.
        let i_reg = f
            .reg_names
            .iter()
            .position(|n| n.as_deref() == Some("i"))
            .expect("named reg");
        // Some block must have it live-in (the loop head).
        assert!(
            lv.live_in.iter().any(|s| s.contains(i_reg)),
            "loop variable must be live somewhere"
        );
    }

    #[test]
    fn dead_value_not_live_anywhere() {
        let f = func("fn main() { let dead = 42; let used = 1; print(used); }");
        let lv = liveness(&f);
        let dead_reg = f
            .reg_names
            .iter()
            .position(|n| n.as_deref() == Some("dead"))
            .unwrap();
        assert!(
            lv.live_in.iter().all(|s| !s.contains(dead_reg)),
            "dead value must never be live-in"
        );
    }

    #[test]
    fn value_live_across_intervening_loop() {
        // `c` is defined in the entry block and used only after the
        // loop: it must be live-in across every loop block.
        let f = func(
            "fn main() {
                let c = rank() == 0;
                let d = 0;
                while (d < 3) { d = d + 1; }
                if (c) { print(1); }
            }",
        );
        let lv = liveness(&f);
        let c_reg = f
            .reg_names
            .iter()
            .position(|n| n.as_deref() == Some("c"))
            .unwrap();
        let live_in_count = lv.live_in.iter().filter(|s| s.contains(c_reg)).count();
        assert!(
            live_in_count >= 2,
            "c must be live-in across the loop, found {live_in_count} blocks"
        );
    }
}
