//! Optimization and back-end passes — the "rest of the compiler" that
//! gives the Figure-1 baseline its realistic weight (see DESIGN.md §2:
//! the paper measures analysis overhead relative to a *full* GCC
//! compilation, so the reproduction needs a non-trivial compilation
//! pipeline to be overhead-comparable).

pub mod bitset;
pub mod codegen;
pub mod liveness;
pub mod passes;
pub mod usedef;

pub use codegen::{allocate, Allocation, Location, PHYS_REGS};
pub use liveness::{liveness, Liveness};
pub use passes::{optimize_func, optimize_module, OptStats};
