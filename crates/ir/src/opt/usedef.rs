//! Use/def extraction shared by the dataflow and codegen passes.

use crate::func::BasicBlock;
use crate::instr::{Directive, Instr, MpiIr, Terminator};
use crate::types::{Reg, Value};

fn push_val(v: &Value, out: &mut Vec<Reg>) {
    if let Value::Reg(r) = v {
        out.push(*r);
    }
}

/// Registers read by one instruction.
pub fn instr_uses(i: &Instr) -> Vec<Reg> {
    let mut out = Vec::new();
    match i {
        Instr::Copy { src, .. } | Instr::Unary { src, .. } => push_val(src, &mut out),
        Instr::Binary { lhs, rhs, .. } => {
            push_val(lhs, &mut out);
            push_val(rhs, &mut out);
        }
        Instr::ArrayNew { len, init, .. } => {
            push_val(len, &mut out);
            push_val(init, &mut out);
        }
        Instr::Load { arr, idx, .. } => {
            out.push(*arr);
            push_val(idx, &mut out);
        }
        Instr::Store {
            arr, idx, value, ..
        } => {
            out.push(*arr);
            push_val(idx, &mut out);
            push_val(value, &mut out);
        }
        Instr::Intrinsic { args, .. } | Instr::Print { args } => {
            for a in args {
                push_val(a, &mut out);
            }
        }
        Instr::Call { args, .. } => {
            for a in args {
                push_val(a, &mut out);
            }
        }
        Instr::Mpi { op, .. } => match op {
            MpiIr::Collective {
                value, root, comm, ..
            } => {
                if let Some(v) = value {
                    push_val(v, &mut out);
                }
                if let Some(r) = root {
                    push_val(r, &mut out);
                }
                if let Some(c) = comm {
                    push_val(c, &mut out);
                }
            }
            MpiIr::Send {
                value,
                dest,
                tag,
                comm,
            } => {
                push_val(value, &mut out);
                push_val(dest, &mut out);
                push_val(tag, &mut out);
                if let Some(c) = comm {
                    push_val(c, &mut out);
                }
            }
            MpiIr::Recv { src, tag, comm } => {
                push_val(src, &mut out);
                push_val(tag, &mut out);
                if let Some(c) = comm {
                    push_val(c, &mut out);
                }
            }
            MpiIr::CommSplit { parent, color, key } => {
                push_val(parent, &mut out);
                push_val(color, &mut out);
                push_val(key, &mut out);
            }
            MpiIr::CommDup { comm } => push_val(comm, &mut out),
            MpiIr::Isend {
                value,
                dest,
                tag,
                comm,
            } => {
                push_val(value, &mut out);
                push_val(dest, &mut out);
                push_val(tag, &mut out);
                if let Some(c) = comm {
                    push_val(c, &mut out);
                }
            }
            MpiIr::Irecv { src, tag, comm } => {
                push_val(src, &mut out);
                push_val(tag, &mut out);
                if let Some(c) = comm {
                    push_val(c, &mut out);
                }
            }
            MpiIr::Wait { request } => push_val(request, &mut out),
            MpiIr::Waitall { requests } => {
                for r in requests {
                    push_val(r, &mut out);
                }
            }
            MpiIr::Init { .. } | MpiIr::Finalize | MpiIr::CommWorld => {}
        },
        Instr::Check(_) => {}
    }
    out
}

/// Registers read by a terminator.
pub fn term_uses(t: &Terminator) -> Vec<Reg> {
    let mut out = Vec::new();
    match t {
        Terminator::Branch { cond, .. } => push_val(cond, &mut out),
        Terminator::Return { value: Some(v), .. } => push_val(v, &mut out),
        _ => {}
    }
    out
}

/// Registers read by a directive block's directive itself.
pub fn directive_uses(b: &BasicBlock) -> Vec<Reg> {
    let mut out = Vec::new();
    if let Some(d) = b.directive() {
        match d {
            Directive::ParallelBegin {
                num_threads: Some(v),
                ..
            } => push_val(v, &mut out),
            Directive::PForInit { lo, hi, .. } => {
                push_val(lo, &mut out);
                push_val(hi, &mut out);
            }
            _ => {}
        }
    }
    out
}

/// Registers written by a directive block's directive.
pub fn directive_defs(b: &BasicBlock) -> Vec<Reg> {
    let mut out = Vec::new();
    if let Some(d) = b.directive() {
        match d {
            Directive::SingleBegin { chosen, .. }
            | Directive::MasterBegin { chosen, .. }
            | Directive::SectionBegin { chosen, .. } => out.push(*chosen),
            Directive::PForInit { var, chunk_end, .. } => {
                out.push(*var);
                out.push(*chunk_end);
            }
            _ => {}
        }
    }
    out
}

/// Is this instruction removable when its destination is dead? Pure
/// computations only — anything that traps, synchronizes, communicates
/// or touches memory visible elsewhere must stay.
pub fn is_pure(i: &Instr) -> bool {
    match i {
        Instr::Copy { .. } | Instr::Unary { .. } => true,
        // Div/Rem can trap on zero; all other binaries are pure.
        Instr::Binary { op, .. } => !matches!(
            op,
            parcoach_front::ast::BinOp::Div | parcoach_front::ast::BinOp::Rem
        ),
        Instr::Intrinsic { intr, .. } => matches!(
            intr,
            parcoach_front::ast::Intrinsic::Sqrt
                | parcoach_front::ast::Intrinsic::Abs
                | parcoach_front::ast::Intrinsic::MinOf
                | parcoach_front::ast::Intrinsic::MaxOf
                | parcoach_front::ast::Intrinsic::IntOf
                | parcoach_front::ast::Intrinsic::FloatOf
                | parcoach_front::ast::Intrinsic::Len
                | parcoach_front::ast::Intrinsic::Rank
                | parcoach_front::ast::Intrinsic::Size
                | parcoach_front::ast::Intrinsic::ThreadNum
                | parcoach_front::ast::Intrinsic::NumThreads
                | parcoach_front::ast::Intrinsic::InParallel
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;
    use parcoach_front::ast::{BinOp, Intrinsic};
    use parcoach_front::span::Span;

    #[test]
    fn uses_of_binary() {
        let i = Instr::Binary {
            dest: Reg(2),
            op: BinOp::Add,
            lhs: Value::Reg(Reg(0)),
            rhs: Value::int(3),
            span: Span::DUMMY,
        };
        assert_eq!(instr_uses(&i), vec![Reg(0)]);
        assert_eq!(i.dest(), Some(Reg(2)));
    }

    #[test]
    fn purity_classification() {
        let pure = Instr::Binary {
            dest: Reg(0),
            op: BinOp::Mul,
            lhs: Value::int(1),
            rhs: Value::int(2),
            span: Span::DUMMY,
        };
        assert!(is_pure(&pure));
        let div = Instr::Binary {
            dest: Reg(0),
            op: BinOp::Div,
            lhs: Value::int(1),
            rhs: Value::Reg(Reg(1)),
            span: Span::DUMMY,
        };
        assert!(!is_pure(&div), "division may trap");
        let print = Instr::Print { args: vec![] };
        assert!(!is_pure(&print));
        let rank = Instr::Intrinsic {
            dest: Reg(0),
            intr: Intrinsic::Rank,
            args: vec![],
        };
        assert!(is_pure(&rank));
    }

    #[test]
    fn term_uses_cover_branch_and_return() {
        let t = Terminator::Branch {
            cond: Value::Reg(Reg(5)),
            then_bb: crate::types::BlockId(0),
            else_bb: crate::types::BlockId(1),
            span: Span::DUMMY,
        };
        assert_eq!(term_uses(&t), vec![Reg(5)]);
        let r = Terminator::Return {
            value: Some(Value::Reg(Reg(7))),
            span: Span::DUMMY,
        };
        assert_eq!(term_uses(&r), vec![Reg(7)]);
        assert!(term_uses(&Terminator::Goto(crate::types::BlockId(0))).is_empty());
    }
}
