//! Classic scalar optimizations: local constant folding + copy
//! propagation, local common-subexpression elimination, and global
//! dead-code elimination. Together with `codegen`, these give the
//! baseline "compiler" pipeline the realistic weight against which the
//! PARCOACH analysis overhead is measured (Figure 1); they are also
//! genuinely useful for the interpreter's execution speed.
//!
//! Instrumentation `Check` instructions are side-effecting and are never
//! touched by any pass.

use crate::func::{FuncIr, Module};
use crate::instr::{Instr, Terminator};
use crate::opt::liveness::liveness;
use crate::opt::usedef::{instr_uses, is_pure};
use crate::types::{Const, Reg, Value};
use parcoach_front::ast::{BinOp, UnOp};
use std::collections::HashMap;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Binary/unary operations folded to constants.
    pub folded: usize,
    /// Operand uses rewritten by copy/constant propagation.
    pub propagated: usize,
    /// Instructions removed as redundant (CSE).
    pub cse_removed: usize,
    /// Instructions removed as dead.
    pub dce_removed: usize,
}

impl OptStats {
    /// Total changes.
    pub fn total(&self) -> usize {
        self.folded + self.propagated + self.cse_removed + self.dce_removed
    }
}

/// Optimize a whole module (each function to a local fixpoint, at most
/// `max_rounds` rounds).
pub fn optimize_module(m: &mut Module, max_rounds: usize) -> OptStats {
    let mut total = OptStats::default();
    for f in &mut m.funcs {
        for _ in 0..max_rounds {
            let s = optimize_func(f);
            total.folded += s.folded;
            total.propagated += s.propagated;
            total.cse_removed += s.cse_removed;
            total.dce_removed += s.dce_removed;
            if s.total() == 0 {
                break;
            }
        }
    }
    total
}

/// One round of local folding/propagation + CSE + global DCE.
pub fn optimize_func(f: &mut FuncIr) -> OptStats {
    let mut stats = OptStats::default();
    local_fold_and_propagate(f, &mut stats);
    local_cse(f, &mut stats);
    dce(f, &mut stats);
    stats
}

/// What a register is currently known to hold within one block.
#[derive(Clone, Copy, PartialEq)]
enum Known {
    Const(Const),
    CopyOf(Reg),
}

/// Local constant folding + copy/constant propagation (per block).
fn local_fold_and_propagate(f: &mut FuncIr, stats: &mut OptStats) {
    for b in &mut f.blocks {
        let mut known: HashMap<Reg, Known> = HashMap::new();
        // Resolve a value through the known map.
        let resolve = |v: Value, known: &HashMap<Reg, Known>, stats: &mut OptStats| -> Value {
            if let Value::Reg(r) = v {
                match known.get(&r) {
                    Some(Known::Const(c)) => {
                        stats.propagated += 1;
                        return Value::Const(*c);
                    }
                    Some(Known::CopyOf(src)) => {
                        stats.propagated += 1;
                        return Value::Reg(*src);
                    }
                    None => {}
                }
            }
            v
        };
        // Invalidate facts about a redefined register (both as key and as
        // copy source).
        fn invalidate(known: &mut HashMap<Reg, Known>, r: Reg) {
            known.remove(&r);
            known.retain(|_, v| !matches!(v, Known::CopyOf(s) if *s == r));
        }
        for i in &mut b.instrs {
            // Rewrite operands first.
            match i {
                Instr::Copy { src, .. } | Instr::Unary { src, .. } => {
                    *src = resolve(*src, &known, stats);
                }
                Instr::Binary { lhs, rhs, .. } => {
                    *lhs = resolve(*lhs, &known, stats);
                    *rhs = resolve(*rhs, &known, stats);
                }
                Instr::ArrayNew { len, init, .. } => {
                    *len = resolve(*len, &known, stats);
                    *init = resolve(*init, &known, stats);
                }
                Instr::Load { idx, .. } => {
                    *idx = resolve(*idx, &known, stats);
                }
                Instr::Store { idx, value, .. } => {
                    *idx = resolve(*idx, &known, stats);
                    *value = resolve(*value, &known, stats);
                }
                Instr::Intrinsic { args, .. }
                | Instr::Print { args }
                | Instr::Call { args, .. } => {
                    for a in args {
                        *a = resolve(*a, &known, stats);
                    }
                }
                Instr::Mpi { op, .. } => match op {
                    // Communicator operands stay registers: they are
                    // opaque handles with no constant form.
                    crate::instr::MpiIr::Collective { value, root, .. } => {
                        if let Some(v) = value {
                            *v = resolve(*v, &known, stats);
                        }
                        if let Some(r) = root {
                            *r = resolve(*r, &known, stats);
                        }
                    }
                    crate::instr::MpiIr::Send {
                        value, dest, tag, ..
                    } => {
                        *value = resolve(*value, &known, stats);
                        *dest = resolve(*dest, &known, stats);
                        *tag = resolve(*tag, &known, stats);
                    }
                    crate::instr::MpiIr::Recv { src, tag, .. } => {
                        *src = resolve(*src, &known, stats);
                        *tag = resolve(*tag, &known, stats);
                    }
                    crate::instr::MpiIr::CommSplit { color, key, .. } => {
                        *color = resolve(*color, &known, stats);
                        *key = resolve(*key, &known, stats);
                    }
                    // Request operands stay registers (opaque handles);
                    // the scalar operands of the posts fold like their
                    // blocking counterparts.
                    crate::instr::MpiIr::Isend {
                        value, dest, tag, ..
                    } => {
                        *value = resolve(*value, &known, stats);
                        *dest = resolve(*dest, &known, stats);
                        *tag = resolve(*tag, &known, stats);
                    }
                    crate::instr::MpiIr::Irecv { src, tag, .. } => {
                        *src = resolve(*src, &known, stats);
                        *tag = resolve(*tag, &known, stats);
                    }
                    _ => {}
                },
                Instr::Check(_) => {}
            }
            // Fold.
            if let Instr::Binary {
                dest,
                op,
                lhs: Value::Const(a),
                rhs: Value::Const(b),
                ..
            } = i
            {
                if let Some(c) = fold_binary(*op, *a, *b) {
                    stats.folded += 1;
                    *i = Instr::Copy {
                        dest: *dest,
                        src: Value::Const(c),
                    };
                }
            }
            if let Instr::Unary {
                dest,
                op,
                src: Value::Const(c),
            } = i
            {
                if let Some(c) = fold_unary(*op, *c) {
                    stats.folded += 1;
                    *i = Instr::Copy {
                        dest: *dest,
                        src: Value::Const(c),
                    };
                }
            }
            // Record new facts.
            if let Some(d) = i.dest() {
                invalidate(&mut known, d);
            }
            if let Instr::Copy { dest, src } = i {
                match src {
                    Value::Const(c) => {
                        known.insert(*dest, Known::Const(*c));
                    }
                    Value::Reg(s) if *s != *dest => {
                        known.insert(*dest, Known::CopyOf(*s));
                    }
                    _ => {}
                }
            }
        }
        // Terminator operands.
        if let Terminator::Branch { cond, .. } = &mut b.term {
            *cond = resolve(*cond, &known, stats);
        }
        if let Terminator::Return { value: Some(v), .. } = &mut b.term {
            *v = resolve(*v, &known, stats);
        }
    }
}

fn fold_binary(op: BinOp, a: Const, b: Const) -> Option<Const> {
    use Const::*;
    Some(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (BinOp::Div, Int(x), Int(y)) if y != 0 => Int(x.wrapping_div(y)),
        (BinOp::Rem, Int(x), Int(y)) if y != 0 => Int(x.wrapping_rem(y)),
        (BinOp::Add, Float(x), Float(y)) => Float(x + y),
        (BinOp::Sub, Float(x), Float(y)) => Float(x - y),
        (BinOp::Mul, Float(x), Float(y)) => Float(x * y),
        (BinOp::Div, Float(x), Float(y)) => Float(x / y),
        (BinOp::Eq, Int(x), Int(y)) => Bool(x == y),
        (BinOp::Ne, Int(x), Int(y)) => Bool(x != y),
        (BinOp::Lt, Int(x), Int(y)) => Bool(x < y),
        (BinOp::Le, Int(x), Int(y)) => Bool(x <= y),
        (BinOp::Gt, Int(x), Int(y)) => Bool(x > y),
        (BinOp::Ge, Int(x), Int(y)) => Bool(x >= y),
        (BinOp::Eq, Bool(x), Bool(y)) => Bool(x == y),
        (BinOp::Ne, Bool(x), Bool(y)) => Bool(x != y),
        (BinOp::And, Bool(x), Bool(y)) => Bool(x && y),
        (BinOp::Or, Bool(x), Bool(y)) => Bool(x || y),
        (BinOp::Eq, Float(x), Float(y)) => Bool(x == y),
        (BinOp::Ne, Float(x), Float(y)) => Bool(x != y),
        (BinOp::Lt, Float(x), Float(y)) => Bool(x < y),
        (BinOp::Le, Float(x), Float(y)) => Bool(x <= y),
        (BinOp::Gt, Float(x), Float(y)) => Bool(x > y),
        (BinOp::Ge, Float(x), Float(y)) => Bool(x >= y),
        _ => return None,
    })
}

fn fold_unary(op: UnOp, c: Const) -> Option<Const> {
    Some(match (op, c) {
        (UnOp::Neg, Const::Int(x)) => Const::Int(x.wrapping_neg()),
        (UnOp::Neg, Const::Float(x)) => Const::Float(-x),
        (UnOp::Not, Const::Bool(b)) => Const::Bool(!b),
        _ => return None,
    })
}

/// A hashable key for pure expressions within one block.
#[derive(PartialEq, Clone)]
enum ExprKey {
    Binary(BinOp, Value, Value),
    Unary(UnOp, Value),
}

/// Local common-subexpression elimination: a pure expression computed
/// twice in a block with the same operands becomes a copy of the first
/// result.
fn local_cse(f: &mut FuncIr, stats: &mut OptStats) {
    for b in &mut f.blocks {
        // (key, result reg); invalidated when any operand register is
        // redefined.
        let mut avail: Vec<(ExprKey, Reg)> = Vec::new();
        for i in &mut b.instrs {
            let pure = is_pure(i);
            let key = match &*i {
                Instr::Binary { op, lhs, rhs, .. } if pure => {
                    Some(ExprKey::Binary(*op, *lhs, *rhs))
                }
                Instr::Unary { op, src, .. } => Some(ExprKey::Unary(*op, *src)),
                _ => None,
            };
            // A redefinition invalidates previously-available expressions
            // that mention (or produced) the destination — *before* the
            // new expression is recorded.
            if let Some(d) = i.dest() {
                avail.retain(|(k, res)| {
                    if *res == d {
                        return false;
                    }
                    let uses_d = |v: &Value| matches!(v, Value::Reg(r) if *r == d);
                    match k {
                        ExprKey::Binary(_, a, b) => !uses_d(a) && !uses_d(b),
                        ExprKey::Unary(_, a) => !uses_d(a),
                    }
                });
            }
            if let (Some(key), Some(dest)) = (key, i.dest()) {
                if let Some((_, prev)) = avail.iter().find(|(k, _)| *k == key) {
                    stats.cse_removed += 1;
                    *i = Instr::Copy {
                        dest,
                        src: Value::Reg(*prev),
                    };
                } else {
                    avail.push((key, dest));
                }
            }
        }
    }
}

/// Global dead-code elimination driven by liveness.
fn dce(f: &mut FuncIr, stats: &mut OptStats) {
    let lv = liveness(f);
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        // Walk backwards with a running live set, which at the block end
        // covers the successors' needs *and* the terminator's own reads.
        let mut live = lv.live_out[bi].clone();
        for u in crate::opt::usedef::term_uses(&b.term) {
            live.insert(u.index());
        }
        let mut keep: Vec<bool> = vec![true; b.instrs.len()];
        for (ii, i) in b.instrs.iter().enumerate().rev() {
            let dead_dest = i.dest().map(|d| !live.contains(d.index())).unwrap_or(false);
            if dead_dest && is_pure(i) {
                keep[ii] = false;
                stats.dce_removed += 1;
                continue; // its uses do not become live
            }
            if let Some(d) = i.dest() {
                live.remove(d.index());
            }
            for u in instr_uses(i) {
                live.insert(u.index());
            }
        }
        let mut it = keep.iter();
        b.instrs.retain(|_| *it.next().expect("keep mask aligned"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::verify::verify_module;
    use parcoach_front::parse_and_check;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    fn count_instrs(m: &Module) -> usize {
        m.total_instrs()
    }

    #[test]
    fn folds_constants() {
        let mut m = lower("fn main() { let x = 2 + 3 * 4; print(x); }");
        let stats = optimize_module(&mut m, 4);
        assert!(stats.folded >= 2, "{stats:?}");
        assert!(verify_module(&m).is_empty());
        // The print argument should now be the constant 14.
        let f = m.main().unwrap();
        let has_const_print = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::Print { args } if args == &vec![Value::Const(Const::Int(14))]
            )
        });
        assert!(has_const_print, "{}", f.dump());
    }

    #[test]
    fn removes_dead_code() {
        let mut m = lower("fn main() { let dead = 1 + 2; let dead2 = dead * 3; print(7); }");
        let before = count_instrs(&m);
        let stats = optimize_module(&mut m, 4);
        assert!(stats.dce_removed >= 2, "{stats:?}");
        assert!(count_instrs(&m) < before);
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn cse_merges_repeated_expressions() {
        let mut m = lower(
            "fn main() { let a = rank(); let x = a * 2 + 1; let y = a * 2 + 1; print(x + y); }",
        );
        let stats = optimize_module(&mut m, 4);
        assert!(stats.cse_removed >= 1, "{stats:?}");
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn preserves_side_effects() {
        let src = "fn main() {
            MPI_Init();
            let unused = MPI_Allreduce(1, SUM);
            MPI_Send(1, 0, 1);
            print(0);
            MPI_Finalize();
        }";
        let mut m = lower(src);
        let mpi_before = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Mpi { .. }))
            .count();
        optimize_module(&mut m, 4);
        let mpi_after = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Mpi { .. }))
            .count();
        assert_eq!(mpi_before, mpi_after, "MPI ops must never be removed");
    }

    #[test]
    fn division_not_folded_or_removed_when_trapping() {
        let mut m = lower("fn main() { let z = rank(); let d = 1 / z; print(0); }");
        optimize_module(&mut m, 4);
        let f = m.main().unwrap();
        let has_div = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Binary { op: BinOp::Div, .. }));
        assert!(
            has_div,
            "possibly-trapping division must stay:\n{}",
            f.dump()
        );
    }

    #[test]
    fn optimized_programs_still_run_correctly() {
        // Differential check: optimized vs unoptimized execution output.
        let src = "fn main() {
            let a = 2 + 3;
            let b = a * a;
            let dead = b * 17;
            let c = 0;
            for (i in 0..b) { c = c + i; }
            print(a, b, c);
        }";
        let unit = parse_and_check("t.mh", src).unwrap();
        let plain = lower_program(&unit.program, &unit.signatures);
        let mut opt = plain.clone();
        optimize_module(&mut opt, 4);
        assert!(verify_module(&opt).is_empty());
        // Execution must agree (uses the interpreter via parcoach-interp
        // in integration tests; here compare instruction-level dumps are
        // different but both verify — run-level equivalence is covered in
        // tests/optimization.rs of the interp crate).
        assert!(opt.total_instrs() < plain.total_instrs());
    }

    #[test]
    fn dce_keeps_branch_conditions() {
        // Regression: the loop condition is defined in the loop-head
        // block and consumed only by that block's *terminator* — it must
        // not be considered dead (found by the property tests).
        let mut m =
            lower("fn main() { let acc = 1; for (i in 0..1) { acc = acc + 1; } print(acc); }");
        optimize_module(&mut m, 4);
        assert!(verify_module(&m).is_empty());
        let f = m.main().unwrap();
        for (id, b) in f.iter_blocks() {
            if let Terminator::Branch {
                cond: Value::Reg(r),
                ..
            } = &b.term
            {
                let defined = f
                    .blocks
                    .iter()
                    .flat_map(|b| &b.instrs)
                    .any(|i| i.dest() == Some(*r));
                assert!(defined, "branch condition {r} of {id} has no definition");
            }
        }
    }

    #[test]
    fn fixpoint_terminates() {
        let mut m = lower("fn main() { let x = 1 + 2; let y = x + 3; let z = y + 4; print(z); }");
        let s1 = optimize_module(&mut m, 10);
        let s2 = optimize_module(&mut m, 10);
        assert!(s1.total() > 0);
        assert_eq!(s2.total(), 0, "second run must be a no-op: {s2:?}");
    }
}
