//! Natural-loop detection.
//!
//! Used by the concurrency analysis: a `single`/`section` region whose
//! begin block lies on a CFG cycle with no barrier on the cycle can run
//! concurrently *with itself* across iterations (the paper's set `S_cc`
//! covers such regions via the dynamic concurrency counter).

use crate::dom::DomTree;
use crate::func::FuncIr;
use crate::types::BlockId;

/// One natural loop: the header plus every block of its body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header. Sorted.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Is `b` inside this loop?
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// Loop forest of a function (loops discovered from back edges; loops
/// sharing a header are merged, as usual).
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// All loops found.
    pub loops: Vec<NaturalLoop>,
}

impl LoopInfo {
    /// Find back edges (`tail → header` where `header` dominates `tail`)
    /// and collect natural loops.
    pub fn compute(f: &FuncIr, dom: &DomTree) -> LoopInfo {
        let preds = f.predecessors();
        let mut by_header: std::collections::HashMap<BlockId, Vec<BlockId>> =
            std::collections::HashMap::new();
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                if dom.dominates(s, id) {
                    by_header.entry(s).or_default().push(id);
                }
            }
        }
        let mut loops = Vec::new();
        for (header, tails) in by_header {
            // Standard natural-loop body collection: walk predecessors
            // backwards from each tail until the header.
            let mut in_loop = std::collections::HashSet::new();
            in_loop.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &t in &tails {
                if in_loop.insert(t) {
                    stack.push(t);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if in_loop.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let mut blocks: Vec<BlockId> = in_loop.into_iter().collect();
            blocks.sort_unstable();
            loops.push(NaturalLoop { header, blocks });
        }
        loops.sort_by_key(|l| l.header);
        LoopInfo { loops }
    }

    /// All loops containing block `b`, innermost-sized first (smallest
    /// body first).
    pub fn loops_containing(&self, b: BlockId) -> Vec<&NaturalLoop> {
        let mut ls: Vec<&NaturalLoop> = self.loops.iter().filter(|l| l.contains(b)).collect();
        ls.sort_by_key(|l| l.blocks.len());
        ls
    }

    /// True if `b` lies on any cycle.
    pub fn in_any_loop(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::func_from_edges;

    #[test]
    fn simple_while_loop() {
        // 0 → 1(head) → {2(body), 3}; 2 → 1
        let f = func_from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 1)]);
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.blocks, vec![BlockId(1), BlockId(2)]);
        assert!(li.in_any_loop(BlockId(2)));
        assert!(!li.in_any_loop(BlockId(3)));
    }

    #[test]
    fn nested_loops() {
        // outer: 1..4, inner: 2..3
        // 0→1, 1→2, 2→3, 3→2 (inner back), 3→4, 4→1 (outer back), 4→5...
        // max 2 succ per node: 3 → {2,4}, 4 → {1,5}
        let f = func_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4), (4, 1), (4, 5)]);
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.loops.len(), 2);
        let inner = li
            .loops
            .iter()
            .find(|l| l.header == BlockId(2))
            .expect("inner loop");
        let outer = li
            .loops
            .iter()
            .find(|l| l.header == BlockId(1))
            .expect("outer loop");
        assert!(inner.blocks.len() < outer.blocks.len());
        assert!(outer.contains(BlockId(3)));
        let containing = li.loops_containing(BlockId(3));
        assert_eq!(containing.len(), 2);
        assert_eq!(containing[0].header, BlockId(2)); // innermost first
    }

    #[test]
    fn no_loops_in_dag() {
        let f = func_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert!(li.loops.is_empty());
    }

    #[test]
    fn self_loop() {
        // 1 → 1
        let f = func_from_edges(3, &[(0, 1), (1, 1), (1, 2)]);
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.loops.len(), 1);
        assert_eq!(li.loops[0].blocks, vec![BlockId(1)]);
    }
}
