//! AST → CFG lowering.
//!
//! Reproduces the CFG shape the paper's compiler pass operates on (§2):
//!
//! * every OpenMP directive gets a dedicated basic block;
//! * implicit barriers at the ends of `parallel`, `single` (unless
//!   `nowait`), `pfor`/`sections` (unless `nowait`) become explicit
//!   [`Directive::Barrier`] nodes;
//! * threads that skip a `single`/`master`/`section` body jump *around*
//!   the matching end directive, so every region's begin/end nodes
//!   bracket exactly the paths that executed the region.
//!
//! Expressions are lowered to three-address instructions over virtual
//! registers; `&&`/`||` short-circuit through the CFG.

use crate::func::{BasicBlock, FuncIr, Module};
use crate::instr::{BlockKind, Directive, Instr, MpiIr, Terminator, WorkshareKind};
use crate::types::{BlockId, Reg, RegionId, Value};
use parcoach_front::ast::{
    BinOp, Block, Expr, ExprKind, Function, Intrinsic, LValue, MpiOp, OmpStmt, Program, Stmt,
    StmtKind, Type, UnOp,
};
use parcoach_front::sema::Signature;
use parcoach_front::span::Span;
use std::collections::HashMap;

/// Lower a full checked program to IR.
pub fn lower_program(prog: &Program, sigs: &HashMap<String, Signature>) -> Module {
    let funcs = prog
        .functions
        .iter()
        .map(|f| Lowerer::new(f, sigs).run())
        .collect();
    Module::new(funcs)
}

/// Lower a single checked function against a full signature table. The
/// incremental session (`parcoachd` edits) re-lowers only the edited
/// function; the result is bit-identical to the corresponding entry of
/// [`lower_program`] because lowering is per-function pure.
pub fn lower_function(f: &Function, sigs: &HashMap<String, Signature>) -> FuncIr {
    Lowerer::new(f, sigs).run()
}

struct LoopTargets {
    continue_bb: BlockId,
    break_bb: BlockId,
}

struct Lowerer<'a> {
    src: &'a Function,
    sigs: &'a HashMap<String, Signature>,
    blocks: Vec<BasicBlock>,
    reg_types: Vec<Type>,
    reg_names: Vec<Option<String>>,
    /// Lexical scopes mapping variable names to registers.
    scopes: Vec<HashMap<String, Reg>>,
    cur: BlockId,
    regions: u32,
    loops: Vec<LoopTargets>,
}

impl<'a> Lowerer<'a> {
    fn new(src: &'a Function, sigs: &'a HashMap<String, Signature>) -> Self {
        Lowerer {
            src,
            sigs,
            blocks: vec![BasicBlock::new()],
            reg_types: Vec::new(),
            reg_names: Vec::new(),
            scopes: vec![HashMap::new()],
            cur: BlockId(0),
            regions: 0,
            loops: Vec::new(),
        }
    }

    fn run(mut self) -> FuncIr {
        let mut params = Vec::new();
        for p in &self.src.params {
            let r = self.fresh_named(p.ty, &p.name.name);
            self.scopes
                .last_mut()
                .expect("scope stack non-empty")
                .insert(p.name.name.clone(), r);
            params.push(r);
        }
        self.blocks[0].span = self.src.span;
        self.lower_block(&self.src.body);
        // Fall-through at the end of the body: synthesize a return.
        if matches!(self.blocks[self.cur.index()].term, Terminator::Unreachable) {
            self.blocks[self.cur.index()].term = Terminator::Return {
                value: None,
                span: self.src.span,
            };
        }
        FuncIr {
            name: self.src.name.name.clone(),
            params,
            ret: self.src.ret,
            reg_types: self.reg_types,
            reg_names: self.reg_names,
            blocks: self.blocks,
            entry: BlockId(0),
            region_count: self.regions,
            span: self.src.span,
        }
    }

    // ---- infrastructure --------------------------------------------------

    fn fresh(&mut self, ty: Type) -> Reg {
        let r = Reg(self.reg_types.len() as u32);
        self.reg_types.push(ty);
        self.reg_names.push(None);
        r
    }

    fn fresh_named(&mut self, ty: Type, name: &str) -> Reg {
        let r = self.fresh(ty);
        self.reg_names[r.index()] = Some(name.to_string());
        r
    }

    fn fresh_region(&mut self) -> RegionId {
        let r = RegionId(self.regions);
        self.regions += 1;
        r
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new());
        id
    }

    fn new_directive_block(&mut self, d: Directive, span: Span) -> BlockId {
        let id = self.new_block();
        let b = &mut self.blocks[id.index()];
        b.kind = BlockKind::Directive(d);
        b.span = span;
        id
    }

    fn emit(&mut self, i: Instr) {
        self.blocks[self.cur.index()].instrs.push(i);
    }

    fn set_term(&mut self, t: Terminator) {
        debug_assert!(
            matches!(self.blocks[self.cur.index()].term, Terminator::Unreachable),
            "terminator set twice on {}",
            self.cur
        );
        self.blocks[self.cur.index()].term = t;
    }

    /// Finish the current block with a goto and continue in `next`.
    fn goto(&mut self, next: BlockId) {
        self.set_term(Terminator::Goto(next));
        self.cur = next;
    }

    /// True when the current block already ends (after break/continue/
    /// return) — further statements in the source block are dead code.
    fn terminated(&self) -> bool {
        !matches!(self.blocks[self.cur.index()].term, Terminator::Unreachable)
    }

    fn lookup(&self, name: &str) -> Reg {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
            .unwrap_or_else(|| panic!("sema guaranteed variable `{name}` exists"))
    }

    // ---- statements -------------------------------------------------------

    fn lower_block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            if self.terminated() {
                break; // dead code after break/continue/return
            }
            self.lower_stmt(s);
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        if self.blocks[self.cur.index()].span.is_dummy() {
            self.blocks[self.cur.index()].span = s.span;
        }
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let v = self.lower_expr(init);
                let ty = ty.unwrap_or_else(|| self.value_ty(v));
                let r = self.fresh_named(ty, &name.name);
                self.emit(Instr::Copy { dest: r, src: v });
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.name.clone(), r);
            }
            StmtKind::Assign { target, value } => {
                let v = self.lower_expr(value);
                match target {
                    LValue::Var(id) => {
                        let r = self.lookup(&id.name);
                        self.emit(Instr::Copy { dest: r, src: v });
                    }
                    LValue::Index(id, idx) => {
                        let arr = self.lookup(&id.name);
                        let i = self.lower_expr(idx);
                        self.emit(Instr::Store {
                            arr,
                            idx: i,
                            value: v,
                            span: s.span,
                        });
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.lower_expr(cond);
                let then_bb = self.new_block();
                let join = self.new_block();
                let else_bb = if else_blk.is_some() {
                    self.new_block()
                } else {
                    join
                };
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                    span: cond.span,
                });
                self.cur = then_bb;
                self.lower_block(then_blk);
                if !self.terminated() {
                    self.set_term(Terminator::Goto(join));
                }
                if let Some(eb) = else_blk {
                    self.cur = else_bb;
                    self.lower_block(eb);
                    if !self.terminated() {
                        self.set_term(Terminator::Goto(join));
                    }
                }
                self.cur = join;
            }
            StmtKind::While { cond, body } => {
                let head = self.new_block();
                self.goto(head);
                let c = self.lower_expr(cond);
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                    span: cond.span,
                });
                self.loops.push(LoopTargets {
                    continue_bb: head,
                    break_bb: exit,
                });
                self.cur = body_bb;
                self.lower_block(body);
                if !self.terminated() {
                    self.set_term(Terminator::Goto(head));
                }
                self.loops.pop();
                self.cur = exit;
            }
            StmtKind::For { var, lo, hi, body } => {
                let lo_v = self.lower_expr(lo);
                let hi_v = self.lower_expr(hi);
                // Materialize the bound so it is evaluated once.
                let bound = self.fresh(Type::Int);
                self.emit(Instr::Copy {
                    dest: bound,
                    src: hi_v,
                });
                let iv = self.fresh_named(Type::Int, &var.name);
                self.emit(Instr::Copy {
                    dest: iv,
                    src: lo_v,
                });
                let head = self.new_block();
                self.goto(head);
                let c = self.fresh(Type::Bool);
                self.emit(Instr::Binary {
                    dest: c,
                    op: BinOp::Lt,
                    lhs: iv.into(),
                    rhs: bound.into(),
                    span: s.span,
                });
                let body_bb = self.new_block();
                let incr = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: c.into(),
                    then_bb: body_bb,
                    else_bb: exit,
                    span: s.span,
                });
                self.loops.push(LoopTargets {
                    continue_bb: incr,
                    break_bb: exit,
                });
                self.cur = body_bb;
                self.scopes.push(HashMap::new());
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(var.name.clone(), iv);
                for st in &body.stmts {
                    if self.terminated() {
                        break;
                    }
                    self.lower_stmt(st);
                }
                self.scopes.pop();
                if !self.terminated() {
                    self.set_term(Terminator::Goto(incr));
                }
                self.loops.pop();
                self.cur = incr;
                self.emit(Instr::Binary {
                    dest: iv,
                    op: BinOp::Add,
                    lhs: iv.into(),
                    rhs: Value::int(1),
                    span: s.span,
                });
                self.set_term(Terminator::Goto(head));
                self.cur = exit;
            }
            StmtKind::Return(value) => {
                let v = value.as_ref().map(|e| self.lower_expr(e));
                self.set_term(Terminator::Return {
                    value: v,
                    span: s.span,
                });
            }
            StmtKind::Break => {
                let target = self
                    .loops
                    .last()
                    .expect("sema guaranteed break is inside a loop")
                    .break_bb;
                self.set_term(Terminator::Goto(target));
            }
            StmtKind::Continue => {
                let target = self
                    .loops
                    .last()
                    .expect("sema guaranteed continue is inside a loop")
                    .continue_bb;
                self.set_term(Terminator::Goto(target));
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e);
            }
            StmtKind::Print(args) => {
                let vals = args.iter().map(|a| self.lower_expr(a)).collect();
                self.emit(Instr::Print { args: vals });
            }
            StmtKind::Barrier => {
                let bar = self.new_directive_block(
                    Directive::Barrier {
                        implicit: false,
                        region: None,
                        span: s.span,
                    },
                    s.span,
                );
                self.goto(bar);
                let cont = self.new_block();
                self.goto(cont);
            }
            StmtKind::Omp(omp) => self.lower_omp(omp, s.span),
        }
    }

    fn lower_omp(&mut self, omp: &OmpStmt, span: Span) {
        match omp {
            OmpStmt::Parallel { num_threads, body } => {
                let nt = num_threads.as_ref().map(|e| self.lower_expr(e));
                let region = self.fresh_region();
                let pb = self.new_directive_block(
                    Directive::ParallelBegin {
                        region,
                        num_threads: nt,
                        span,
                    },
                    span,
                );
                self.goto(pb);
                let body_entry = self.new_block();
                self.goto(body_entry);
                self.lower_block(body);
                let ib = self.new_directive_block(
                    Directive::Barrier {
                        implicit: true,
                        region: Some(region),
                        span,
                    },
                    span,
                );
                self.goto(ib);
                let pe = self.new_directive_block(Directive::ParallelEnd { region }, span);
                self.goto(pe);
                let cont = self.new_block();
                self.goto(cont);
            }
            OmpStmt::Single { nowait, body } => {
                let region = self.fresh_region();
                let chosen = self.fresh(Type::Bool);
                let sb = self.new_directive_block(
                    Directive::SingleBegin {
                        region,
                        nowait: *nowait,
                        chosen,
                        span,
                    },
                    span,
                );
                self.goto(sb);
                let body_entry = self.new_block();
                // Non-chosen threads jump around the body *and* the end
                // directive, to the barrier (or to the continuation when
                // nowait).
                let se = self.new_directive_block(Directive::SingleEnd { region }, span);
                let after = if *nowait {
                    self.new_block()
                } else {
                    self.new_directive_block(
                        Directive::Barrier {
                            implicit: true,
                            region: Some(region),
                            span,
                        },
                        span,
                    )
                };
                self.set_term(Terminator::Branch {
                    cond: chosen.into(),
                    then_bb: body_entry,
                    else_bb: after,
                    span,
                });
                self.cur = body_entry;
                self.lower_block(body);
                if !self.terminated() {
                    self.set_term(Terminator::Goto(se));
                }
                self.blocks[se.index()].term = Terminator::Goto(after);
                self.cur = after;
                if !*nowait {
                    // `after` is the barrier directive; fall through to a
                    // fresh normal block.
                    let cont = self.new_block();
                    self.goto(cont);
                }
            }
            OmpStmt::Master { body } => {
                let region = self.fresh_region();
                let chosen = self.fresh(Type::Bool);
                let mb = self.new_directive_block(
                    Directive::MasterBegin {
                        region,
                        chosen,
                        span,
                    },
                    span,
                );
                self.goto(mb);
                let body_entry = self.new_block();
                let me = self.new_directive_block(Directive::MasterEnd { region }, span);
                let cont = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: chosen.into(),
                    then_bb: body_entry,
                    else_bb: cont,
                    span,
                });
                self.cur = body_entry;
                self.lower_block(body);
                if !self.terminated() {
                    self.set_term(Terminator::Goto(me));
                }
                self.blocks[me.index()].term = Terminator::Goto(cont);
                self.cur = cont;
            }
            OmpStmt::Critical { body } => {
                let region = self.fresh_region();
                let cb = self.new_directive_block(Directive::CriticalBegin { region, span }, span);
                self.goto(cb);
                let body_entry = self.new_block();
                self.goto(body_entry);
                self.lower_block(body);
                let ce = self.new_directive_block(Directive::CriticalEnd { region }, span);
                self.goto(ce);
                let cont = self.new_block();
                self.goto(cont);
            }
            OmpStmt::PFor {
                nowait,
                var,
                lo,
                hi,
                body,
            } => {
                let lo_v = self.lower_expr(lo);
                let hi_v = self.lower_expr(hi);
                let region = self.fresh_region();
                let wb = self.new_directive_block(
                    Directive::WorkshareBegin {
                        region,
                        kind: WorkshareKind::PFor,
                        nowait: *nowait,
                        span,
                    },
                    span,
                );
                self.goto(wb);
                let iv = self.fresh_named(Type::Int, &var.name);
                let chunk_end = self.fresh(Type::Int);
                let pi = self.new_directive_block(
                    Directive::PForInit {
                        region,
                        var: iv,
                        chunk_end,
                        lo: lo_v,
                        hi: hi_v,
                    },
                    span,
                );
                self.goto(pi);
                let head = self.new_block();
                self.goto(head);
                let c = self.fresh(Type::Bool);
                self.emit(Instr::Binary {
                    dest: c,
                    op: BinOp::Lt,
                    lhs: iv.into(),
                    rhs: chunk_end.into(),
                    span,
                });
                let body_bb = self.new_block();
                let incr = self.new_block();
                let we = self.new_directive_block(Directive::WorkshareEnd { region }, span);
                self.set_term(Terminator::Branch {
                    cond: c.into(),
                    then_bb: body_bb,
                    else_bb: we,
                    span,
                });
                // `continue` in a pfor targets the increment block; break
                // is rejected by sema.
                self.loops.push(LoopTargets {
                    continue_bb: incr,
                    break_bb: we,
                });
                self.cur = body_bb;
                self.scopes.push(HashMap::new());
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(var.name.clone(), iv);
                for st in &body.stmts {
                    if self.terminated() {
                        break;
                    }
                    self.lower_stmt(st);
                }
                self.scopes.pop();
                if !self.terminated() {
                    self.set_term(Terminator::Goto(incr));
                }
                self.loops.pop();
                self.cur = incr;
                self.emit(Instr::Binary {
                    dest: iv,
                    op: BinOp::Add,
                    lhs: iv.into(),
                    rhs: Value::int(1),
                    span,
                });
                self.set_term(Terminator::Goto(head));
                self.cur = we;
                if *nowait {
                    let cont = self.new_block();
                    self.goto(cont);
                } else {
                    let ib = self.new_directive_block(
                        Directive::Barrier {
                            implicit: true,
                            region: Some(region),
                            span,
                        },
                        span,
                    );
                    self.goto(ib);
                    let cont = self.new_block();
                    self.goto(cont);
                }
            }
            OmpStmt::Sections { nowait, sections } => {
                let parent = self.fresh_region();
                let wb = self.new_directive_block(
                    Directive::WorkshareBegin {
                        region: parent,
                        kind: WorkshareKind::Sections,
                        nowait: *nowait,
                        span,
                    },
                    span,
                );
                self.goto(wb);
                for (idx, sec) in sections.iter().enumerate() {
                    let region = self.fresh_region();
                    let chosen = self.fresh(Type::Bool);
                    let sb = self.new_directive_block(
                        Directive::SectionBegin {
                            region,
                            parent,
                            index: idx as u32,
                            chosen,
                        },
                        sec.span,
                    );
                    self.goto(sb);
                    let body_entry = self.new_block();
                    let se = self.new_directive_block(Directive::SectionEnd { region }, sec.span);
                    let next = self.new_block();
                    self.set_term(Terminator::Branch {
                        cond: chosen.into(),
                        then_bb: body_entry,
                        else_bb: next,
                        span: sec.span,
                    });
                    self.cur = body_entry;
                    self.lower_block(sec);
                    if !self.terminated() {
                        self.set_term(Terminator::Goto(se));
                    }
                    self.blocks[se.index()].term = Terminator::Goto(next);
                    self.cur = next;
                }
                let we = self.new_directive_block(Directive::WorkshareEnd { region: parent }, span);
                self.goto(we);
                if *nowait {
                    let cont = self.new_block();
                    self.goto(cont);
                } else {
                    let ib = self.new_directive_block(
                        Directive::Barrier {
                            implicit: true,
                            region: Some(parent),
                            span,
                        },
                        span,
                    );
                    self.goto(ib);
                    let cont = self.new_block();
                    self.goto(cont);
                }
            }
        }
    }

    // ---- expressions -------------------------------------------------------

    fn value_ty(&self, v: Value) -> Type {
        match v {
            Value::Reg(r) => self.reg_types[r.index()],
            Value::Const(c) => c.ty(),
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Value {
        match &e.kind {
            ExprKind::Int(v) => Value::int(*v),
            ExprKind::Float(v) => Value::Const(crate::types::Const::Float(*v)),
            ExprKind::Bool(v) => Value::bool(*v),
            ExprKind::Var(id) => Value::Reg(self.lookup(&id.name)),
            ExprKind::Index(id, idx) => {
                let arr = self.lookup(&id.name);
                let i = self.lower_expr(idx);
                let elem = self.reg_types[arr.index()]
                    .elem()
                    .expect("sema guaranteed array type");
                let dest = self.fresh(elem);
                self.emit(Instr::Load {
                    dest,
                    arr,
                    idx: i,
                    span: e.span,
                });
                dest.into()
            }
            ExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner);
                let ty = match op {
                    UnOp::Neg => self.value_ty(v),
                    UnOp::Not => Type::Bool,
                };
                let dest = self.fresh(ty);
                self.emit(Instr::Unary {
                    dest,
                    op: *op,
                    src: v,
                });
                dest.into()
            }
            ExprKind::Binary(op @ (BinOp::And | BinOp::Or), l, r) => {
                // Short-circuit lowering through the CFG.
                let dest = self.fresh(Type::Bool);
                let lv = self.lower_expr(l);
                let rhs_bb = self.new_block();
                let short_bb = self.new_block();
                let join = self.new_block();
                let (then_bb, else_bb, short_val) = match op {
                    BinOp::And => (rhs_bb, short_bb, false),
                    BinOp::Or => (short_bb, rhs_bb, true),
                    _ => unreachable!(),
                };
                self.set_term(Terminator::Branch {
                    cond: lv,
                    then_bb,
                    else_bb,
                    span: e.span,
                });
                self.cur = rhs_bb;
                let rv = self.lower_expr(r);
                self.emit(Instr::Copy { dest, src: rv });
                self.set_term(Terminator::Goto(join));
                self.cur = short_bb;
                self.emit(Instr::Copy {
                    dest,
                    src: Value::bool(short_val),
                });
                self.set_term(Terminator::Goto(join));
                self.cur = join;
                dest.into()
            }
            ExprKind::Binary(op, l, r) => {
                let lv = self.lower_expr(l);
                let rv = self.lower_expr(r);
                let ty = if op.is_cmp() {
                    Type::Bool
                } else {
                    self.value_ty(lv)
                };
                let dest = self.fresh(ty);
                self.emit(Instr::Binary {
                    dest,
                    op: *op,
                    lhs: lv,
                    rhs: rv,
                    span: e.span,
                });
                dest.into()
            }
            ExprKind::Call(name, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.lower_expr(a)).collect();
                let ret = self
                    .sigs
                    .get(&name.name)
                    .map(|s| s.ret)
                    .unwrap_or(Type::Void);
                let dest = if ret == Type::Void {
                    None
                } else {
                    Some(self.fresh(ret))
                };
                self.emit(Instr::Call {
                    dest,
                    func: name.name.clone(),
                    args: vals,
                    span: e.span,
                });
                dest.map(Value::Reg).unwrap_or(Value::int(0))
            }
            ExprKind::Intrinsic(intr, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.lower_expr(a)).collect();
                if *intr == Intrinsic::ArrayNew {
                    let elem = self.value_ty(vals[1]);
                    let ty = Type::array_of(elem).expect("sema checked elem type");
                    let dest = self.fresh(ty);
                    self.emit(Instr::ArrayNew {
                        dest,
                        len: vals[0],
                        init: vals[1],
                        elem,
                        span: e.span,
                    });
                    return dest.into();
                }
                let ty = match intr {
                    Intrinsic::Rank
                    | Intrinsic::Size
                    | Intrinsic::ThreadNum
                    | Intrinsic::NumThreads
                    | Intrinsic::IntOf
                    | Intrinsic::Len => Type::Int,
                    Intrinsic::InParallel => Type::Bool,
                    Intrinsic::Sqrt | Intrinsic::FloatOf => Type::Float,
                    Intrinsic::Abs | Intrinsic::MinOf | Intrinsic::MaxOf => self.value_ty(vals[0]),
                    Intrinsic::ArrayNew => unreachable!("handled above"),
                };
                let dest = self.fresh(ty);
                self.emit(Instr::Intrinsic {
                    dest,
                    intr: *intr,
                    args: vals,
                });
                dest.into()
            }
            ExprKind::Mpi(op) => self.lower_mpi(op, e.span),
        }
    }

    fn lower_mpi(&mut self, op: &MpiOp, span: Span) -> Value {
        use parcoach_front::ast::CollectiveKind as CK;
        match op {
            MpiOp::Init => {
                self.emit(Instr::Mpi {
                    dest: None,
                    op: MpiIr::Init { required: None },
                    span,
                });
                Value::int(0)
            }
            MpiOp::InitThread { required } => {
                self.emit(Instr::Mpi {
                    dest: None,
                    op: MpiIr::Init {
                        required: Some(*required),
                    },
                    span,
                });
                Value::int(0)
            }
            MpiOp::Finalize => {
                self.emit(Instr::Mpi {
                    dest: None,
                    op: MpiIr::Finalize,
                    span,
                });
                Value::int(0)
            }
            MpiOp::Send {
                value,
                dest,
                tag,
                comm,
            } => {
                let v = self.lower_expr(value);
                let d = self.lower_expr(dest);
                let t = self.lower_expr(tag);
                let c = comm.as_ref().map(|e| self.lower_expr(e));
                self.emit(Instr::Mpi {
                    dest: None,
                    op: MpiIr::Send {
                        value: v,
                        dest: d,
                        tag: t,
                        comm: c,
                    },
                    span,
                });
                Value::int(0)
            }
            MpiOp::Recv { src, tag, comm } => {
                let s = self.lower_expr(src);
                let t = self.lower_expr(tag);
                let c = comm.as_ref().map(|e| self.lower_expr(e));
                let dest = self.fresh(Type::Float);
                self.emit(Instr::Mpi {
                    dest: Some(dest),
                    op: MpiIr::Recv {
                        src: s,
                        tag: t,
                        comm: c,
                    },
                    span,
                });
                dest.into()
            }
            MpiOp::CommWorld => {
                let dest = self.fresh(Type::Comm);
                self.emit(Instr::Mpi {
                    dest: Some(dest),
                    op: MpiIr::CommWorld,
                    span,
                });
                dest.into()
            }
            MpiOp::CommSplit { parent, color, key } => {
                let p = self.lower_expr(parent);
                let c = self.lower_expr(color);
                let k = self.lower_expr(key);
                let dest = self.fresh(Type::Comm);
                self.emit(Instr::Mpi {
                    dest: Some(dest),
                    op: MpiIr::CommSplit {
                        parent: p,
                        color: c,
                        key: k,
                    },
                    span,
                });
                dest.into()
            }
            MpiOp::CommDup { comm } => {
                let c = self.lower_expr(comm);
                let dest = self.fresh(Type::Comm);
                self.emit(Instr::Mpi {
                    dest: Some(dest),
                    op: MpiIr::CommDup { comm: c },
                    span,
                });
                dest.into()
            }
            MpiOp::Isend {
                value,
                dest,
                tag,
                comm,
            } => {
                let v = self.lower_expr(value);
                let d = self.lower_expr(dest);
                let t = self.lower_expr(tag);
                let c = comm.as_ref().map(|e| self.lower_expr(e));
                let req = self.fresh(Type::Request);
                self.emit(Instr::Mpi {
                    dest: Some(req),
                    op: MpiIr::Isend {
                        value: v,
                        dest: d,
                        tag: t,
                        comm: c,
                    },
                    span,
                });
                req.into()
            }
            MpiOp::Irecv { src, tag, comm } => {
                let s = self.lower_expr(src);
                let t = self.lower_expr(tag);
                let c = comm.as_ref().map(|e| self.lower_expr(e));
                let req = self.fresh(Type::Request);
                self.emit(Instr::Mpi {
                    dest: Some(req),
                    op: MpiIr::Irecv {
                        src: s,
                        tag: t,
                        comm: c,
                    },
                    span,
                });
                req.into()
            }
            MpiOp::Wait { request } => {
                let r = self.lower_expr(request);
                let dest = self.fresh(Type::Float);
                self.emit(Instr::Mpi {
                    dest: Some(dest),
                    op: MpiIr::Wait { request: r },
                    span,
                });
                dest.into()
            }
            MpiOp::Waitall { requests } => {
                let rs: Vec<Value> = requests.iter().map(|r| self.lower_expr(r)).collect();
                self.emit(Instr::Mpi {
                    dest: None,
                    op: MpiIr::Waitall { requests: rs },
                    span,
                });
                Value::int(0)
            }
            MpiOp::AnySource => Value::int(parcoach_front::ast::ANY_SOURCE),
            MpiOp::AnyTag => Value::int(parcoach_front::ast::ANY_TAG),
            MpiOp::Collective(c) => {
                let value = c.value.as_ref().map(|v| self.lower_expr(v));
                let root = c.root.as_ref().map(|r| self.lower_expr(r));
                let comm = c.comm.as_ref().map(|e| self.lower_expr(e));
                // Result type mirrors sema's typing rules.
                let ret = match c.kind {
                    CK::Barrier => None,
                    CK::Bcast | CK::Reduce | CK::Allreduce | CK::Scan => {
                        Some(self.value_ty(value.expect("checked by sema")))
                    }
                    CK::Gather | CK::Allgather => Some(
                        Type::array_of(self.value_ty(value.expect("checked by sema")))
                            .expect("numeric payload"),
                    ),
                    CK::Scatter | CK::ReduceScatter => Some(
                        self.value_ty(value.expect("checked by sema"))
                            .elem()
                            .expect("array payload"),
                    ),
                    CK::Alltoall => Some(self.value_ty(value.expect("checked by sema"))),
                };
                let dest = ret.map(|t| self.fresh(t));
                self.emit(Instr::Mpi {
                    dest,
                    op: MpiIr::Collective {
                        kind: c.kind,
                        value,
                        reduce_op: c.reduce_op,
                        root,
                        comm,
                    },
                    span,
                });
                dest.map(Value::Reg).unwrap_or(Value::int(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("source must check");
        lower_program(&unit.program, &unit.signatures)
    }

    fn directives(f: &FuncIr) -> Vec<&'static str> {
        f.blocks
            .iter()
            .filter_map(|b| b.directive().map(|d| d.mnemonic()))
            .collect()
    }

    #[test]
    fn straight_line() {
        let m = lower("fn main() { let x = 1; let y = x + 2; print(y); }");
        let f = m.main().unwrap();
        assert_eq!(f.block_count(), 1);
        assert!(matches!(
            f.block(BlockId(0)).term,
            Terminator::Return { value: None, .. }
        ));
        assert!(!f.has_omp());
    }

    #[test]
    fn if_else_shape() {
        let m = lower("fn main() { let x = 0; if (x == 0) { x = 1; } else { x = 2; } print(x); }");
        let f = m.main().unwrap();
        // entry + then + join + else = 4 blocks
        assert_eq!(f.block_count(), 4);
        let preds = f.predecessors();
        // join block has exactly two predecessors
        let join = f
            .block_ids()
            .find(|b| preds[b.index()].len() == 2)
            .expect("join exists");
        assert!(f.successors(join).is_empty() || !f.successors(join).is_empty());
    }

    #[test]
    fn while_loop_has_back_edge() {
        let m = lower("fn main() { let i = 0; while (i < 10) { i = i + 1; } }");
        let f = m.main().unwrap();
        // Find a block whose successor has a smaller id → back edge.
        let mut has_back = false;
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                if s.0 < id.0 {
                    has_back = true;
                }
            }
        }
        assert!(has_back, "while must create a back edge:\n{}", f.dump());
    }

    #[test]
    fn parallel_shape() {
        let m = lower("fn main() { parallel { let x = 1; } }");
        let f = m.main().unwrap();
        assert_eq!(
            directives(f),
            vec!["parallel.begin", "barrier.implicit", "parallel.end"]
        );
        assert_eq!(f.region_count, 1);
    }

    #[test]
    fn single_shape_with_barrier() {
        let m = lower("fn main() { parallel { single { let x = 1; } } }");
        let f = m.main().unwrap();
        let d = directives(f);
        assert_eq!(
            d,
            vec![
                "parallel.begin",
                "single.begin",
                "single.end",
                "barrier.implicit",
                "barrier.implicit",
                "parallel.end"
            ]
        );
        // SingleBegin branches: chosen → body, not chosen → the barrier,
        // skipping single.end.
        let (sb_id, sb) = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.directive(), Some(Directive::SingleBegin { .. })))
            .unwrap();
        let Terminator::Branch { else_bb, .. } = sb.term else {
            panic!("single.begin must branch, got {}", f.block(sb_id).term);
        };
        assert!(
            matches!(
                f.block(else_bb).directive(),
                Some(Directive::Barrier { implicit: true, .. })
            ),
            "skip path must land on the implicit barrier"
        );
    }

    #[test]
    fn single_nowait_has_no_barrier() {
        let m = lower("fn main() { parallel { single nowait { let x = 1; } } }");
        let f = m.main().unwrap();
        let d = directives(f);
        assert_eq!(
            d,
            vec![
                "parallel.begin",
                "single.begin",
                "single.end",
                "barrier.implicit", // only the parallel-end barrier
                "parallel.end"
            ]
        );
    }

    #[test]
    fn master_has_no_barrier() {
        let m = lower("fn main() { parallel { master { let x = 1; } } }");
        let f = m.main().unwrap();
        let d = directives(f);
        assert_eq!(
            d,
            vec![
                "parallel.begin",
                "master.begin",
                "master.end",
                "barrier.implicit", // parallel end only
                "parallel.end"
            ]
        );
    }

    #[test]
    fn pfor_shape() {
        let m = lower("fn main() { parallel { pfor (i in 0..10) { let x = i; } } }");
        let f = m.main().unwrap();
        let d = directives(f);
        assert_eq!(
            d,
            vec![
                "parallel.begin",
                "workshare.begin",
                "pfor.init",
                "workshare.end",
                "barrier.implicit",
                "barrier.implicit",
                "parallel.end"
            ]
        );
    }

    #[test]
    fn sections_shape() {
        let m = lower("fn main() { parallel { sections nowait { section { } section { } } } }");
        let f = m.main().unwrap();
        let d = directives(f);
        assert_eq!(
            d,
            vec![
                "parallel.begin",
                "workshare.begin",
                "section.begin",
                "section.end",
                "section.begin",
                "section.end",
                "workshare.end",
                "barrier.implicit",
                "parallel.end"
            ]
        );
        // Sections get distinct region ids.
        let regions: Vec<_> = f
            .blocks
            .iter()
            .filter_map(|b| match b.directive() {
                Some(Directive::SectionBegin { region, parent, .. }) => Some((*region, *parent)),
                _ => None,
            })
            .collect();
        assert_eq!(regions.len(), 2);
        assert_ne!(regions[0].0, regions[1].0);
        assert_eq!(regions[0].1, regions[1].1);
    }

    #[test]
    fn explicit_barrier_block() {
        let m = lower("fn main() { parallel { barrier; } }");
        let f = m.main().unwrap();
        assert!(f.blocks.iter().any(|b| matches!(
            b.directive(),
            Some(Directive::Barrier {
                implicit: false,
                ..
            })
        )));
    }

    #[test]
    fn collectives_recorded() {
        let m =
            lower("fn main() { MPI_Init(); let x = MPI_Allreduce(rank(), SUM); MPI_Finalize(); }");
        let f = m.main().unwrap();
        assert_eq!(f.collective_blocks().len(), 1);
        assert!(f.has_mpi());
    }

    #[test]
    fn nonblocking_ops_lowered_with_request_registers() {
        let m = lower(
            "fn main() {
                let r = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let s = MPI_Isend(1.5, 0, 4);
                let v = MPI_Wait(r);
                MPI_Waitall(s);
            }",
        );
        let f = m.main().unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| &b.instrs).collect();
        let irecv = instrs
            .iter()
            .find_map(|i| match i {
                Instr::Mpi {
                    dest: Some(d),
                    op: MpiIr::Irecv { src, tag, comm },
                    ..
                } => Some((*d, *src, *tag, *comm)),
                _ => None,
            })
            .expect("irecv lowered");
        assert_eq!(f.reg_types[irecv.0.index()], Type::Request);
        assert_eq!(
            irecv.1,
            Value::int(parcoach_front::ast::ANY_SOURCE),
            "wildcard source lowers to the sentinel"
        );
        assert_eq!(irecv.2, Value::int(parcoach_front::ast::ANY_TAG));
        assert_eq!(irecv.3, None);
        assert!(instrs.iter().any(|i| matches!(
            i,
            Instr::Mpi {
                dest: Some(_),
                op: MpiIr::Isend { .. },
                ..
            }
        )));
        assert!(instrs.iter().any(|i| matches!(
            i,
            Instr::Mpi {
                dest: Some(_),
                op: MpiIr::Wait { .. },
                ..
            }
        )));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::Mpi { dest: None, op: MpiIr::Waitall { requests }, .. } if requests.len() == 1)));
        assert!(f.has_p2p(), "request ops count as p2p blocks");
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let m = lower("fn main() { let a = true; let b = a && !a; let c = a || b; }");
        let f = m.main().unwrap();
        assert!(
            f.block_count() >= 7,
            "got {}:\n{}",
            f.block_count(),
            f.dump()
        );
    }

    #[test]
    fn break_continue_targets() {
        let m = lower(
            "fn main() {
                let i = 0;
                while (true) {
                    i = i + 1;
                    if (i > 3) { break; }
                    if (i > 1) { continue; }
                }
            }",
        );
        let f = m.main().unwrap();
        // Must terminate (no Unreachable left).
        for (id, b) in f.iter_blocks() {
            if f.predecessors()[id.index()].is_empty() && id != f.entry {
                continue; // unreachable padding blocks are allowed
            }
            assert!(
                !matches!(b.term, Terminator::Unreachable),
                "block {id} unterminated:\n{}",
                f.dump()
            );
        }
    }

    #[test]
    fn function_calls_lowered() {
        let m = lower(
            "fn work(a: int) -> int { return a * 2; }
             fn main() { let x = work(21); print(x); }",
        );
        let f = m.main().unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::Call { func, .. } if func == "work")));
    }

    #[test]
    fn dead_code_after_return_dropped() {
        let m = lower("fn f() -> int { return 1; } fn main() { let x = f(); }");
        let f = m.func("f").unwrap();
        assert_eq!(f.block_count(), 1);
    }

    #[test]
    fn nested_parallel_regions_distinct() {
        let m = lower("fn main() { parallel { parallel { } } }");
        let f = m.main().unwrap();
        assert_eq!(f.region_count, 2);
        let begins: Vec<_> = f
            .blocks
            .iter()
            .filter_map(|b| match b.directive() {
                Some(Directive::ParallelBegin { region, .. }) => Some(*region),
                _ => None,
            })
            .collect();
        assert_eq!(begins.len(), 2);
        assert_ne!(begins[0], begins[1]);
    }
}
