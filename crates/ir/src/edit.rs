//! In-place IR edits for incremental sessions.
//!
//! `parcoachd` keeps lowered [`FuncIr`]s resident across single-function
//! text edits. An edit that grows or shrinks one function shifts the
//! byte offsets of every function *after* it in the document; their IR
//! is still valid, but the [`Span`]s baked into it point at the old
//! offsets. [`shift_spans`] rebases a function wholesale so that a
//! warm re-analysis reports the same positions a cold re-parse of the
//! new document would.
//!
//! The walk is exhaustive by construction: every match is written
//! without a wildcard arm over span-carrying variants, so adding a new
//! span field to the IR fails compilation here instead of silently
//! drifting warm diagnostics.

use crate::func::FuncIr;
use crate::instr::{CheckOp, Directive, Instr, Terminator};
use parcoach_front::span::Span;

/// Apply `delta` to a span, saturating at zero. The reserved
/// [`Span::DUMMY`] is left untouched — synthesized nodes have no source
/// position to rebase.
fn shift(span: &mut Span, delta: i64) {
    if span.is_dummy() {
        return;
    }
    let lo = span.lo as i64 + delta;
    let hi = span.hi as i64 + delta;
    *span = Span::new(lo.max(0) as u32, hi.max(0) as u32);
}

/// Rebase every span in `f` by `delta` bytes (positive = the edit grew
/// an earlier function). A no-op for `delta == 0`.
pub fn shift_spans(f: &mut FuncIr, delta: i64) {
    if delta == 0 {
        return;
    }
    shift(&mut f.span, delta);
    for b in &mut f.blocks {
        shift(&mut b.span, delta);
        if let crate::instr::BlockKind::Directive(d) = &mut b.kind {
            shift_directive(d, delta);
        }
        for i in &mut b.instrs {
            shift_instr(i, delta);
        }
        shift_terminator(&mut b.term, delta);
    }
}

fn shift_instr(i: &mut Instr, delta: i64) {
    match i {
        Instr::Binary { span, .. }
        | Instr::ArrayNew { span, .. }
        | Instr::Load { span, .. }
        | Instr::Store { span, .. }
        | Instr::Call { span, .. }
        | Instr::Mpi { span, .. } => shift(span, delta),
        Instr::Check(c) => match c {
            CheckOp::CollectiveCc { span, .. }
            | CheckOp::ReturnCc { span }
            | CheckOp::AssertMonothread { span, .. }
            | CheckOp::ConcEnter { span, .. }
            | CheckOp::P2pEpoch { span } => shift(span, delta),
            CheckOp::ConcExit { .. } => {}
        },
        Instr::Copy { .. }
        | Instr::Unary { .. }
        | Instr::Intrinsic { .. }
        | Instr::Print { .. } => {}
    }
}

fn shift_directive(d: &mut Directive, delta: i64) {
    match d {
        Directive::ParallelBegin { span, .. }
        | Directive::SingleBegin { span, .. }
        | Directive::MasterBegin { span, .. }
        | Directive::CriticalBegin { span, .. }
        | Directive::WorkshareBegin { span, .. }
        | Directive::Barrier { span, .. } => shift(span, delta),
        Directive::ParallelEnd { .. }
        | Directive::SingleEnd { .. }
        | Directive::MasterEnd { .. }
        | Directive::CriticalEnd { .. }
        | Directive::WorkshareEnd { .. }
        | Directive::PForInit { .. }
        | Directive::SectionBegin { .. }
        | Directive::SectionEnd { .. } => {}
    }
}

fn shift_terminator(t: &mut Terminator, delta: i64) {
    match t {
        Terminator::Branch { span, .. } | Terminator::Return { span, .. } => shift(span, delta),
        Terminator::Goto(_) | Terminator::Unreachable => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use parcoach_front::parse_and_check;

    fn lower_one(src: &str) -> crate::func::Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    /// Shifting by `d` then `-d` is the identity, and a shifted function
    /// is span-for-span the original parsed at an offset.
    #[test]
    fn shift_roundtrip_matches_offset_parse() {
        let src = "fn main() {\n    MPI_Init();\n    if (rank() == 0) { MPI_Barrier(); }\n    MPI_Finalize();\n}\n";
        let pad = "          \n"; // 11 bytes of leading trivia
        let m0 = lower_one(src);
        let m1 = lower_one(&format!("{pad}{src}"));
        let mut shifted = m0.funcs[0].clone();
        shift_spans(&mut shifted, pad.len() as i64);
        assert_eq!(format!("{shifted:?}"), format!("{:?}", m1.funcs[0]));
        shift_spans(&mut shifted, -(pad.len() as i64));
        assert_eq!(format!("{shifted:?}"), format!("{:?}", m0.funcs[0]));
    }

    /// Dummy spans (synthesized barriers, region ends) stay dummy so
    /// they keep rendering as "no location".
    #[test]
    fn dummy_spans_survive_shift() {
        let src = "fn main() { parallel num_threads(2) { single { MPI_Barrier(); } } }";
        let m = lower_one(src);
        let mut f = m.funcs[0].clone();
        shift_spans(&mut f, 1000);
        let count_dummy = |f: &FuncIr| {
            f.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| i.span() == Some(Span::DUMMY))
                .count()
        };
        assert_eq!(count_dummy(&f), count_dummy(&m.funcs[0]));
    }
}
