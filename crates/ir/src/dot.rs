//! Graphviz DOT export of function CFGs.
//!
//! Directive nodes are drawn as boxes (parallel constructs double-framed,
//! barriers filled) so that the paper's "modified CFG" is visually
//! inspectable: `parcoachc dump-cfg prog.mh | dot -Tsvg`.

use crate::func::FuncIr;
use crate::instr::{BlockKind, Directive, Instr};
use std::fmt::Write;

/// Render the CFG of `f` as a DOT digraph.
pub fn func_to_dot(f: &FuncIr) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", f.name);
    let _ = writeln!(out, "  node [fontname=\"monospace\", fontsize=10];");
    let _ = writeln!(out, "  label=\"fn {}\";", f.name);
    for (id, b) in f.iter_blocks() {
        let (shape, label) = match &b.kind {
            BlockKind::Normal => {
                let mut body = String::new();
                for i in b.instrs.iter().take(6) {
                    let line = summarize_instr(i);
                    body.push_str(&line);
                    body.push_str("\\l");
                }
                if b.instrs.len() > 6 {
                    body.push_str(&format!("… (+{})\\l", b.instrs.len() - 6));
                }
                ("box", format!("{id}\\n{body}"))
            }
            BlockKind::Directive(d) => {
                let extra = match d {
                    Directive::Barrier { implicit, .. } => {
                        if *implicit {
                            " (implicit)".to_string()
                        } else {
                            String::new()
                        }
                    }
                    _ => d.region().map(|r| format!(" {r}")).unwrap_or_default(),
                };
                ("octagon", format!("{id}\\n{}{extra}", d.mnemonic()))
            }
        };
        let style = match &b.kind {
            BlockKind::Directive(Directive::Barrier { .. }) => ", style=filled, fillcolor=gray85",
            BlockKind::Directive(Directive::ParallelBegin { .. })
            | BlockKind::Directive(Directive::ParallelEnd { .. }) => ", peripheries=2",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  n{} [shape={shape}, label=\"{label}\"{style}];",
            id.0
        );
    }
    for (id, b) in f.iter_blocks() {
        let succs = b.term.successors();
        match succs.len() {
            2 => {
                let _ = writeln!(out, "  n{} -> n{} [label=\"T\"];", id.0, succs[0].0);
                let _ = writeln!(out, "  n{} -> n{} [label=\"F\"];", id.0, succs[1].0);
            }
            _ => {
                for s in succs {
                    let _ = writeln!(out, "  n{} -> n{};", id.0, s.0);
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn summarize_instr(i: &Instr) -> String {
    match i {
        Instr::Copy { dest, src } => format!("{dest} = {src}"),
        Instr::Unary { dest, op, src } => format!("{dest} = {op:?} {src}"),
        Instr::Binary {
            dest, op, lhs, rhs, ..
        } => {
            format!("{dest} = {lhs} {} {rhs}", op.symbol())
        }
        Instr::ArrayNew { dest, len, .. } => format!("{dest} = array[{len}]"),
        Instr::Load { dest, arr, idx, .. } => format!("{dest} = {arr}[{idx}]"),
        Instr::Store {
            arr, idx, value, ..
        } => format!("{arr}[{idx}] = {value}"),
        Instr::Intrinsic { dest, intr, .. } => format!("{dest} = {}()", intr.name()),
        Instr::Call { dest, func, .. } => match dest {
            Some(d) => format!("{d} = call {func}"),
            None => format!("call {func}"),
        },
        Instr::Mpi { op, .. } => match op {
            crate::instr::MpiIr::Collective { kind, .. } => kind.mpi_name().to_string(),
            crate::instr::MpiIr::Init { .. } => "MPI_Init".into(),
            crate::instr::MpiIr::Finalize => "MPI_Finalize".into(),
            crate::instr::MpiIr::Send { .. } => "MPI_Send".into(),
            crate::instr::MpiIr::Recv { .. } => "MPI_Recv".into(),
            crate::instr::MpiIr::CommWorld => "MPI_COMM_WORLD".into(),
            crate::instr::MpiIr::CommSplit { .. } => "MPI_Comm_split".into(),
            crate::instr::MpiIr::CommDup { .. } => "MPI_Comm_dup".into(),
            crate::instr::MpiIr::Isend { .. } => "MPI_Isend".into(),
            crate::instr::MpiIr::Irecv { .. } => "MPI_Irecv".into(),
            crate::instr::MpiIr::Wait { .. } => "MPI_Wait".into(),
            crate::instr::MpiIr::Waitall { .. } => "MPI_Waitall".into(),
        },
        Instr::Print { .. } => "print".into(),
        Instr::Check(c) => format!("CHECK {c:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use parcoach_front::parse_and_check;

    #[test]
    fn dot_contains_all_blocks_and_edges() {
        let unit = parse_and_check(
            "t.mh",
            "fn main() { parallel { single { MPI_Barrier(); } } }",
        )
        .unwrap();
        let m = lower_program(&unit.program, &unit.signatures);
        let f = m.main().unwrap();
        let dot = func_to_dot(f);
        assert!(dot.starts_with("digraph"));
        for id in f.block_ids() {
            assert!(dot.contains(&format!("n{} [", id.0)), "missing node {id}");
        }
        assert!(dot.contains("parallel.begin"));
        assert!(dot.contains("MPI_Barrier"));
        assert!(dot.contains("barrier.implicit"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn branch_edges_labelled() {
        let unit =
            parse_and_check("t.mh", "fn main() { if (rank() == 0) { MPI_Barrier(); } }").unwrap();
        let m = lower_program(&unit.program, &unit.signatures);
        let dot = func_to_dot(m.main().unwrap());
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"F\""));
    }
}
