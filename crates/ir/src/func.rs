//! Function-level IR containers: basic blocks, functions, modules.

use crate::instr::{BlockKind, Directive, Instr, Terminator};
use crate::types::{BlockId, Reg, RegionId, Value};
use parcoach_front::ast::Type;
use parcoach_front::span::Span;
use std::collections::HashMap;
use std::fmt;

/// A basic block: a kind (normal or directive), straight-line
/// instructions, and one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Normal code or an OpenMP directive node.
    pub kind: BlockKind,
    /// Instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
    /// Representative source span (first statement lowered into it).
    pub span: Span,
}

impl BasicBlock {
    /// A fresh, normal, unreachable-terminated block.
    pub fn new() -> Self {
        BasicBlock {
            kind: BlockKind::Normal,
            instrs: Vec::new(),
            term: Terminator::Unreachable,
            span: Span::DUMMY,
        }
    }

    /// The directive, if this is a directive block.
    pub fn directive(&self) -> Option<&Directive> {
        self.kind.directive()
    }

    /// All MPI collective kinds called in this block, with their spans.
    pub fn collectives(&self) -> impl Iterator<Item = (&Instr, Span)> {
        self.instrs.iter().filter_map(|i| {
            i.collective_kind()
                .map(|_| (i, i.span().unwrap_or(Span::DUMMY)))
        })
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A function lowered to CFG form.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// Parameter registers (always the first `params.len()` registers).
    pub params: Vec<Reg>,
    /// Return type.
    pub ret: Type,
    /// Static type of each register, indexed by `Reg`.
    pub reg_types: Vec<Type>,
    /// Debug names for registers that correspond to source variables.
    pub reg_names: Vec<Option<String>>,
    /// Block table; `BlockId` indexes into it.
    pub blocks: Vec<BasicBlock>,
    /// The entry block (no predecessors).
    pub entry: BlockId,
    /// Number of OpenMP region instances allocated in this function.
    pub region_count: u32,
    /// Span of the source function.
    pub span: Span,
}

impl FuncIr {
    /// Access a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over `(BlockId, &BasicBlock)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Ids of all blocks, in table order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The static type of a register.
    pub fn reg_ty(&self, r: Reg) -> Type {
        self.reg_types[r.index()]
    }

    /// The type of an operand.
    pub fn value_ty(&self, v: Value) -> Type {
        match v {
            Value::Reg(r) => self.reg_ty(r),
            Value::Const(c) => c.ty(),
        }
    }

    /// Successors of a block (from its terminator).
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Predecessor table for the whole function.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.iter_blocks() {
            for s in b.term.successors() {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Blocks that end in `Return`.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.iter_blocks()
            .filter(|(_, b)| matches!(b.term, Terminator::Return { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// All blocks containing at least one MPI collective, with kinds.
    pub fn collective_blocks(&self) -> Vec<BlockId> {
        self.iter_blocks()
            .filter(|(_, b)| b.instrs.iter().any(|i| i.collective_kind().is_some()))
            .map(|(id, _)| id)
            .collect()
    }

    /// All blocks containing at least one point-to-point operation.
    pub fn p2p_blocks(&self) -> Vec<BlockId> {
        self.iter_blocks()
            .filter(|(_, b)| {
                b.instrs
                    .iter()
                    .any(|i| matches!(i, crate::instr::Instr::Mpi { op, .. } if op.is_p2p()))
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// True if the function contains any point-to-point operation.
    pub fn has_p2p(&self) -> bool {
        !self.p2p_blocks().is_empty()
    }

    /// True if the function contains any OpenMP directive block.
    pub fn has_omp(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| matches!(b.kind, BlockKind::Directive(_)))
    }

    /// True if the function contains any MPI instruction.
    pub fn has_mpi(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Mpi { .. })))
    }

    /// Find the block carrying the begin directive of `region`.
    pub fn region_begin_block(&self, region: RegionId) -> Option<BlockId> {
        self.iter_blocks()
            .find(|(_, b)| {
                b.directive()
                    .is_some_and(|d| d.opens_region() && d.region() == Some(region))
            })
            .map(|(id, _)| id)
    }

    /// Textual dump for debugging and golden tests.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        let _ = writeln!(
            out,
            "fn {}({} params) -> {:?}",
            self.name,
            self.params.len(),
            self.ret
        );
        for (id, b) in self.iter_blocks() {
            let kind = match &b.kind {
                BlockKind::Normal => String::new(),
                BlockKind::Directive(d) => format!(" [{}]", d.mnemonic()),
            };
            let _ = writeln!(out, "{id}{kind}:");
            for i in &b.instrs {
                let _ = writeln!(out, "    {i:?}");
            }
            let _ = writeln!(out, "    {}", b.term);
        }
        out
    }
}

/// A lowered module: all functions of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Functions in definition order.
    pub funcs: Vec<FuncIr>,
    /// Name → index into `funcs`.
    pub by_name: HashMap<String, usize>,
}

impl Module {
    /// Build a module from functions.
    pub fn new(funcs: Vec<FuncIr>) -> Self {
        let by_name = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        Module { funcs, by_name }
    }

    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncIr> {
        self.by_name.get(name).map(|&i| &self.funcs[i])
    }

    /// Mutable lookup by name.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut FuncIr> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.funcs[i])
    }

    /// The entry function.
    pub fn main(&self) -> Option<&FuncIr> {
        self.func("main")
    }

    /// Total block count across functions (size metric for benches).
    pub fn total_blocks(&self) -> usize {
        self.funcs.iter().map(|f| f.blocks.len()).sum()
    }

    /// Total instruction count across functions.
    pub fn total_instrs(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.instrs.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Const;

    fn tiny_func() -> FuncIr {
        // bb0: %0 = 1; br true ? bb1 : bb2
        // bb1: ret
        // bb2: ret
        let mut b0 = BasicBlock::new();
        b0.instrs.push(Instr::Copy {
            dest: Reg(0),
            src: Value::Const(Const::Int(1)),
        });
        b0.term = Terminator::Branch {
            cond: Value::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            span: Span::DUMMY,
        };
        let mut b1 = BasicBlock::new();
        b1.term = Terminator::Return {
            value: None,
            span: Span::DUMMY,
        };
        let b2 = b1.clone();
        FuncIr {
            name: "t".into(),
            params: vec![],
            ret: Type::Void,
            reg_types: vec![Type::Int],
            reg_names: vec![None],
            blocks: vec![b0, b1, b2],
            entry: BlockId(0),
            region_count: 0,
            span: Span::DUMMY,
        }
    }

    #[test]
    fn predecessors_and_exits() {
        let f = tiny_func();
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert_eq!(f.exit_blocks(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn module_lookup() {
        let m = Module::new(vec![tiny_func()]);
        assert!(m.func("t").is_some());
        assert!(m.func("nope").is_none());
        assert_eq!(m.total_blocks(), 3);
        assert_eq!(m.total_instrs(), 1);
    }

    #[test]
    fn value_types() {
        let f = tiny_func();
        assert_eq!(f.value_ty(Value::Reg(Reg(0))), Type::Int);
        assert_eq!(f.value_ty(Value::Const(Const::Float(1.0))), Type::Float);
    }

    #[test]
    fn has_flags() {
        let f = tiny_func();
        assert!(!f.has_omp());
        assert!(!f.has_mpi());
    }
}
