//! A reusable, poisonable, deadlock-detecting thread barrier.
//!
//! Unlike `std::sync::Barrier`, this barrier
//!
//! * reports a **timeout** instead of hanging when part of the team never
//!   arrives — exactly the failure mode of a control-flow divergent
//!   `barrier`/`single` the paper detects;
//! * can be **poisoned** when another thread aborts (a failed dynamic
//!   check must stop the whole program, not deadlock it).

use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a barrier wait did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierError {
    /// Not all team members arrived within the timeout: the team has
    /// diverged (some threads skipped the barrier or exited the region).
    Timeout {
        /// Threads that arrived before the timeout fired.
        arrived: usize,
        /// Team size expected.
        expected: usize,
    },
    /// The barrier was poisoned by an abort elsewhere.
    Poisoned,
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::Timeout { arrived, expected } => write!(
                f,
                "thread barrier timeout: only {arrived}/{expected} threads arrived \
                 (control-flow divergent barrier?)"
            ),
            BarrierError::Poisoned => write!(f, "barrier poisoned by abort"),
        }
    }
}

struct State {
    /// Threads waiting in the current generation.
    arrived: usize,
    /// Team members that left the region body for good (reached the
    /// join). A departed member can never arrive at the barrier again,
    /// so `arrived + departed == size` with `arrived < size` *proves*
    /// divergence — no timeout needed.
    departed: usize,
    /// Completed-barrier generation counter.
    generation: u64,
    /// Set on abort.
    poisoned: bool,
}

/// The barrier itself. One instance per team; reusable across phases.
pub struct SimBarrier {
    size: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl SimBarrier {
    /// A barrier for `size` threads.
    pub fn new(size: usize) -> SimBarrier {
        SimBarrier {
            size,
            state: Mutex::new(State {
                arrived: 0,
                departed: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Team size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wait for the whole team, giving up after `timeout`.
    pub fn wait(&self, timeout: Duration) -> Result<(), BarrierError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(BarrierError::Poisoned);
        }
        st.arrived += 1;
        if st.arrived == self.size {
            // Last arriver releases the generation.
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        if st.arrived + st.departed == self.size {
            // Everyone else has left the region: the missing members can
            // never arrive. Divergence, proven without waiting.
            return Err(self.diverged(&mut st));
        }
        let gen = st.generation;
        loop {
            let res = self.cv.wait_until(&mut st, deadline);
            if st.poisoned {
                return Err(BarrierError::Poisoned);
            }
            if st.generation != gen {
                return Ok(());
            }
            if st.arrived + st.departed == self.size {
                return Err(self.diverged(&mut st));
            }
            if res.timed_out() {
                return Err(self.diverged(&mut st));
            }
        }
    }

    /// Report divergence from inside `wait`: leave the barrier so other
    /// waiters see a consistent count, and poison it — the team is
    /// broken.
    fn diverged(&self, st: &mut State) -> BarrierError {
        let arrived = st.arrived;
        st.poisoned = true;
        self.cv.notify_all();
        BarrierError::Timeout {
            arrived,
            expected: self.size,
        }
    }

    /// Record that one team member has left the region body for good
    /// (reached the join). Wakes waiters so a now-provable divergence is
    /// reported immediately instead of at the timeout.
    pub fn depart(&self) {
        let mut st = self.state.lock();
        st.departed += 1;
        if st.arrived > 0 && st.arrived + st.departed == self.size {
            self.cv.notify_all();
        }
    }

    /// Poison the barrier: all current and future waiters fail with
    /// [`BarrierError::Poisoned`].
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Has the barrier been poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn all_arrive_released() {
        let b = Arc::new(SimBarrier::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    assert_eq!(b.wait(Duration::from_secs(5)), Ok(()));
                });
            }
        });
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(SimBarrier::new(3));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(b.wait(Duration::from_secs(5)), Ok(()));
                    }
                });
            }
        });
    }

    #[test]
    fn missing_thread_times_out() {
        let b = SimBarrier::new(2);
        let res = b.wait(Duration::from_millis(50));
        assert_eq!(
            res,
            Err(BarrierError::Timeout {
                arrived: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn timeout_poisons_for_late_arrivers() {
        let b = Arc::new(SimBarrier::new(3));
        // One thread waits and times out; a later arriver must see the
        // poison instead of waiting forever for a broken team.
        let b2 = b.clone();
        let h = std::thread::spawn(move || b2.wait(Duration::from_millis(30)));
        let first = h.join().unwrap();
        assert!(matches!(first, Err(BarrierError::Timeout { .. })));
        assert_eq!(
            b.wait(Duration::from_millis(30)),
            Err(BarrierError::Poisoned)
        );
    }

    #[test]
    fn poison_wakes_waiters() {
        let b = Arc::new(SimBarrier::new(2));
        let b2 = b.clone();
        let h = std::thread::spawn(move || b2.wait(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        b.poison();
        assert_eq!(h.join().unwrap(), Err(BarrierError::Poisoned));
        assert!(b.is_poisoned());
    }

    #[test]
    fn single_thread_barrier_trivial() {
        let b = SimBarrier::new(1);
        for _ in 0..5 {
            assert_eq!(b.wait(Duration::from_millis(1)), Ok(()));
        }
    }
}
