//! # parcoach-ompsim — fork/join threading substrate
//!
//! A small OpenMP-model runtime on real OS threads: nested teams,
//! `single`/`master`/`sections` dispatch, `critical` mutual exclusion,
//! static worksharing chunks, and poisonable deadlock-detecting
//! barriers. It implements exactly the execution model the paper assumes
//! ("explicit fork/join, perfectly nested regions") and exposes the
//! introspection the dynamic checks need (`in_parallel`, `thread_num`,
//! team instance ids).
//!
//! Substitution note (DESIGN.md): this stands in for libgomp. Real
//! concurrency is preserved — concurrent-collective bugs genuinely race
//! here — while divergence bugs that would *hang* a real OpenMP program
//! surface as timeout errors instead.
//!
//! ```
//! use parcoach_ompsim::{OmpSim, ThreadCtx};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let sim = OmpSim::default();
//! let hits = AtomicUsize::new(0);
//! let mut ctx = ThreadCtx::initial();
//! sim.fork::<(), _>(&mut ctx, Some(4), &|ctx| {
//!     if ctx.enter_single(0) {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     }
//!     ctx.barrier(std::time::Duration::from_secs(5)).unwrap();
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(hits.load(Ordering::Relaxed), 1); // exactly one thread ran the single
//! ```

pub mod barrier;
pub mod team;

pub use barrier::{BarrierError, SimBarrier};
pub use team::{OmpError, TeamShared, ThreadCtx};

use parking_lot::ReentrantMutex;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the threading substrate.
#[derive(Debug, Clone)]
pub struct OmpConfig {
    /// Team size when `parallel` has no `num_threads` clause.
    pub default_num_threads: usize,
    /// How long barriers wait before declaring divergence.
    pub barrier_timeout: Duration,
    /// Maximum nesting depth of parallel regions (defensive bound).
    pub max_levels: usize,
    /// Run team members on the shared [`parcoach_pool::ThreadCache`]
    /// (reusing parked OS threads across `parallel` regions) instead of
    /// spawning a fresh thread per member per region. Semantics are
    /// identical — every member still gets a dedicated concurrent
    /// thread; only the spawn cost disappears.
    pub pooled: bool,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            default_num_threads: 4,
            barrier_timeout: Duration::from_secs(5),
            max_levels: 8,
            pooled: true,
        }
    }
}

/// The runtime: configuration plus the global `critical` lock.
pub struct OmpSim {
    /// Configuration.
    pub cfg: OmpConfig,
    /// The (unnamed) `critical` lock. Reentrant so nested criticals in a
    /// call chain do not self-deadlock.
    critical: ReentrantMutex<()>,
}

impl Default for OmpSim {
    fn default() -> Self {
        OmpSim::new(OmpConfig::default())
    }
}

impl OmpSim {
    /// Build a runtime.
    pub fn new(cfg: OmpConfig) -> OmpSim {
        OmpSim {
            cfg,
            critical: ReentrantMutex::new(()),
        }
    }

    /// Fork a team of `num_threads` (or the configured default) and run
    /// `body` on every member. Joins all threads (implicit barrier + join
    /// of the `parallel` construct), then returns the first error if any
    /// member failed.
    ///
    /// `E` is the caller's error type (the executor threads its own
    /// run-time errors through).
    pub fn fork<E, F>(
        &self,
        parent: &mut ThreadCtx,
        num_threads: Option<usize>,
        body: &F,
    ) -> Result<(), ForkError<E>>
    where
        E: Send,
        F: Fn(&mut ThreadCtx) -> Result<(), E> + Sync,
    {
        let size = num_threads.unwrap_or(self.cfg.default_num_threads).max(1);
        let level = parent.active_level() + 1;
        if level > self.cfg.max_levels {
            return Err(ForkError::Omp(OmpError::ForkRefused(format!(
                "parallel nesting depth {level} exceeds the configured maximum {}",
                self.cfg.max_levels
            ))));
        }
        let team = team::new_team(size, level);
        let results: Vec<parking_lot::Mutex<Option<Result<(), E>>>> =
            (0..size).map(|_| parking_lot::Mutex::new(None)).collect();
        if self.cfg.pooled {
            // Cached simulator threads: the spawn cost is paid once per
            // process, not once per member per region.
            parcoach_pool::thread_cache().run_set(size, |tid| {
                let mut ctx = team::member_ctx(team.clone(), tid);
                *results[tid].lock() = Some(body(&mut ctx));
                // The member has left the region body for good: siblings
                // still waiting at a barrier learn immediately whether
                // the team has diverged.
                team.barrier.depart();
            });
        } else {
            std::thread::scope(|scope| {
                for (tid, slot) in results.iter().enumerate() {
                    let team = team.clone();
                    scope.spawn(move || {
                        let mut ctx = team::member_ctx(team.clone(), tid);
                        *slot.lock() = Some(body(&mut ctx));
                        team.barrier.depart();
                    });
                }
            });
        }
        let mut first_err = None;
        for r in results.into_iter().filter_map(|m| m.into_inner()) {
            if let Err(e) = r {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(ForkError::Body(e)),
            None => Ok(()),
        }
    }

    /// Poison a team's barrier — used by executors to abort a whole team
    /// when a dynamic check fails on one thread.
    pub fn poison_team(team: &Arc<TeamShared>) {
        team.barrier.poison();
    }

    /// Enter the global `critical` section; the guard releases on drop.
    pub fn critical(&self) -> parking_lot::ReentrantMutexGuard<'_, ()> {
        self.critical.lock()
    }

    /// The configured barrier timeout.
    pub fn barrier_timeout(&self) -> Duration {
        self.cfg.barrier_timeout
    }
}

/// Error from [`OmpSim::fork`].
#[derive(Debug)]
pub enum ForkError<E> {
    /// The runtime itself refused or failed.
    Omp(OmpError),
    /// The first body error.
    Body(E),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fork_runs_all_threads() {
        let sim = OmpSim::default();
        let count = AtomicUsize::new(0);
        let mut ctx = ThreadCtx::initial();
        sim.fork::<(), _>(&mut ctx, Some(8), &|c| {
            count.fetch_add(1, Ordering::Relaxed);
            assert!(c.in_parallel());
            assert_eq!(c.num_threads(), 8);
            assert!(c.thread_num() < 8);
            Ok(())
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn default_team_size_used() {
        let sim = OmpSim::new(OmpConfig {
            default_num_threads: 3,
            ..OmpConfig::default()
        });
        let count = AtomicUsize::new(0);
        let mut ctx = ThreadCtx::initial();
        sim.fork::<(), _>(&mut ctx, None, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_fork_levels() {
        let sim = OmpSim::default();
        let mut ctx = ThreadCtx::initial();
        sim.fork::<(), _>(&mut ctx, Some(2), &|c| {
            assert_eq!(c.active_level(), 1);
            let inner_sim = OmpSim::default();
            inner_sim
                .fork::<(), _>(c, Some(2), &|c2| {
                    assert_eq!(c2.active_level(), 2);
                    assert_eq!(c2.num_threads(), 2);
                    Ok(())
                })
                .map_err(|_| ())?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn nesting_limit_enforced() {
        let sim = OmpSim::new(OmpConfig {
            max_levels: 1,
            ..OmpConfig::default()
        });
        let mut ctx = ThreadCtx::initial();
        let res = sim.fork::<OmpError, _>(&mut ctx, Some(2), &|c| {
            let inner = OmpSim::new(OmpConfig {
                max_levels: 1,
                ..OmpConfig::default()
            });
            match inner.fork::<OmpError, _>(c, Some(2), &|_| Ok(())) {
                Err(ForkError::Omp(e)) => Err(e),
                _ => Ok(()),
            }
        });
        assert!(matches!(
            res,
            Err(ForkError::Body(OmpError::ForkRefused(_)))
        ));
    }

    #[test]
    fn body_error_propagates() {
        let sim = OmpSim::default();
        let mut ctx = ThreadCtx::initial();
        let res = sim.fork::<String, _>(&mut ctx, Some(4), &|c| {
            if c.thread_num() == 2 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        });
        assert!(matches!(res, Err(ForkError::Body(ref s)) if s == "boom"));
    }

    #[test]
    fn barrier_synchronizes_team() {
        let sim = OmpSim::default();
        let before = AtomicUsize::new(0);
        let violated = AtomicUsize::new(0);
        let mut ctx = ThreadCtx::initial();
        sim.fork::<OmpError, _>(&mut ctx, Some(4), &|c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier(Duration::from_secs(5))?;
            // After the barrier, all 4 must have incremented.
            if before.load(Ordering::SeqCst) != 4 {
                violated.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(violated.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn divergent_barrier_detected() {
        let sim = OmpSim::default();
        let mut ctx = ThreadCtx::initial();
        let res = sim.fork::<OmpError, _>(&mut ctx, Some(2), &|c| {
            if c.thread_num() == 0 {
                // Thread 0 waits at a barrier thread 1 never reaches.
                c.barrier(Duration::from_millis(100)).map(|_| ())
            } else {
                Ok(())
            }
        });
        match res {
            Err(ForkError::Body(OmpError::Barrier(BarrierError::Timeout { .. }))) => {}
            other => panic!("expected barrier timeout, got {other:?}"),
        }
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let sim = OmpSim::default();
        let inside = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let mut ctx = ThreadCtx::initial();
        sim.fork::<(), _>(&mut ctx, Some(8), &|_| {
            for _ in 0..100 {
                let _g = sim.critical();
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                inside.fetch_sub(1, Ordering::SeqCst);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_across_team_with_barriers() {
        let sim = OmpSim::default();
        let hits = AtomicUsize::new(0);
        let mut ctx = ThreadCtx::initial();
        sim.fork::<OmpError, _>(&mut ctx, Some(4), &|c| {
            for _ in 0..10 {
                if c.enter_single(42) {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
                c.barrier(Duration::from_secs(5))?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            10,
            "one execution per encounter"
        );
    }

    #[test]
    fn team_instances_unique() {
        let sim = OmpSim::default();
        let mut ids = Vec::new();
        for _ in 0..3 {
            let mut ctx = ThreadCtx::initial();
            let id = std::sync::Mutex::new(0u64);
            sim.fork::<(), _>(&mut ctx, Some(2), &|c| {
                *id.lock().unwrap() = c.team_instance();
                Ok(())
            })
            .unwrap();
            ids.push(*id.lock().unwrap());
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
