//! Teams and thread contexts — the fork/join execution model.
//!
//! The paper's model (§1): "an explicit fork/join model, with perfectly
//! nested regions". A [`ThreadCtx`] describes one thread's position in
//! the (possibly nested) team tree; [`crate::OmpSim::fork`] creates a new
//! team and runs a closure on every member thread.

use crate::barrier::{BarrierError, SimBarrier};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by the threading substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmpError {
    /// A barrier failed (timeout = divergence, or poisoned by abort).
    Barrier(BarrierError),
    /// The runtime refused to fork (e.g. nesting beyond the configured
    /// limit).
    ForkRefused(String),
}

impl std::fmt::Display for OmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OmpError::Barrier(b) => write!(f, "{b}"),
            OmpError::ForkRefused(m) => write!(f, "fork refused: {m}"),
        }
    }
}

impl From<BarrierError> for OmpError {
    fn from(b: BarrierError) -> Self {
        OmpError::Barrier(b)
    }
}

/// Shared state of one team *instance* (one dynamic encounter of a
/// `parallel` construct).
pub struct TeamShared {
    /// Globally unique instance id (used to key concurrency counters).
    pub id: u64,
    /// Number of threads.
    pub size: usize,
    /// Nesting level (outermost parallel region = level 1).
    pub level: usize,
    /// The team barrier.
    pub barrier: SimBarrier,
    /// `single` instance claims: (region id, per-team encounter index) →
    /// claimed flag.
    singles: Mutex<HashMap<(u32, u64), Arc<AtomicBool>>>,
}

impl TeamShared {
    fn new(id: u64, size: usize, level: usize) -> Arc<TeamShared> {
        Arc::new(TeamShared {
            id,
            size,
            level,
            barrier: SimBarrier::new(size),
            singles: Mutex::new(HashMap::new()),
        })
    }

    /// Claim flag for a `single` instance, creating it on first access.
    fn single_claim(&self, region: u32, encounter: u64) -> Arc<AtomicBool> {
        self.singles
            .lock()
            .entry((region, encounter))
            .or_insert_with(|| Arc::new(AtomicBool::new(false)))
            .clone()
    }
}

/// One thread's execution context: its position in the team tree plus
/// per-thread encounter counters for worksharing constructs.
pub struct ThreadCtx {
    /// The team this thread belongs to (`None` = initial thread outside
    /// any parallel region).
    pub team: Option<Arc<TeamShared>>,
    /// Thread number within the team (0 for the initial thread).
    pub thread_num: usize,
    /// How many times this thread has encountered each `single`/
    /// `sections` region (instances must match across the team).
    encounters: HashMap<u32, u64>,
    /// Team barriers this member has passed. Barriers synchronize the
    /// whole team, so after any barrier every member agrees on the
    /// count — it identifies the current *barrier epoch* without any
    /// cross-thread bookkeeping (the executor keys its concurrency-site
    /// counters by it).
    barriers_passed: u64,
}

impl ThreadCtx {
    /// Context of the initial (sequential) thread.
    pub fn initial() -> ThreadCtx {
        ThreadCtx {
            team: None,
            thread_num: 0,
            encounters: HashMap::new(),
            barriers_passed: 0,
        }
    }

    /// Thread id within the innermost team (OpenMP `omp_get_thread_num`).
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    /// Size of the innermost team (OpenMP `omp_get_num_threads`).
    pub fn num_threads(&self) -> usize {
        self.team.as_ref().map_or(1, |t| t.size)
    }

    /// Are we inside an active parallel region? (OpenMP `omp_in_parallel`)
    pub fn in_parallel(&self) -> bool {
        self.team.as_ref().is_some_and(|t| t.size > 1)
    }

    /// Nesting level (0 outside any parallel region).
    pub fn active_level(&self) -> usize {
        self.team.as_ref().map_or(0, |t| t.level)
    }

    /// Team instance id (0 outside any team).
    pub fn team_instance(&self) -> u64 {
        self.team.as_ref().map_or(0, |t| t.id)
    }

    /// Is this thread the master of its team?
    pub fn is_master(&self) -> bool {
        self.thread_num == 0
    }

    /// Enter a `single` region instance: true for exactly one thread of
    /// the team per encounter.
    pub fn enter_single(&mut self, region: u32) -> bool {
        let enc = self.bump_encounter(region);
        match &self.team {
            None => true, // team of one
            Some(t) => {
                let claim = t.single_claim(region, enc);
                claim
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            }
        }
    }

    /// Should this thread run section `index` of `sections` region
    /// `region`? Deterministic round-robin assignment.
    pub fn enter_section(&mut self, region: u32, index: u32) -> bool {
        // All threads bump the encounter for the *parent* region when
        // they reach section 0, keeping instances aligned; the
        // round-robin itself only needs thread_num.
        if index == 0 {
            self.bump_encounter(region);
        }
        (index as usize % self.num_threads()) == self.thread_num
    }

    /// Static chunk of `[lo, hi)` for this thread (OpenMP static
    /// schedule): the iteration subrange `[start, end)`.
    pub fn static_chunk(&self, lo: i64, hi: i64) -> (i64, i64) {
        let n = (hi - lo).max(0);
        let t = self.num_threads() as i64;
        let tid = self.thread_num as i64;
        let base = n / t;
        let rem = n % t;
        // First `rem` threads take base+1 iterations.
        let start = lo + tid * base + tid.min(rem);
        let len = base + if tid < rem { 1 } else { 0 };
        (start, start + len)
    }

    /// Wait at the team barrier (no-op outside a team). A successful
    /// wait advances this member's barrier epoch.
    pub fn barrier(&mut self, timeout: Duration) -> Result<(), OmpError> {
        match &self.team {
            None => Ok(()),
            Some(t) => {
                t.barrier.wait(timeout).map_err(OmpError::from)?;
                self.barriers_passed += 1;
                Ok(())
            }
        }
    }

    /// Team barriers this member has passed (the current barrier
    /// epoch; equal across the team after every barrier).
    pub fn barriers_passed(&self) -> u64 {
        self.barriers_passed
    }

    fn bump_encounter(&mut self, region: u32) -> u64 {
        let e = self.encounters.entry(region).or_insert(0);
        let cur = *e;
        *e += 1;
        cur
    }
}

/// Global team-instance id allocator.
pub(crate) static NEXT_TEAM_ID: AtomicU64 = AtomicU64::new(1);

/// Create a fresh team instance.
pub(crate) fn new_team(size: usize, level: usize) -> Arc<TeamShared> {
    let id = NEXT_TEAM_ID.fetch_add(1, Ordering::Relaxed);
    TeamShared::new(id, size, level)
}

/// Build the member context for thread `tid` of `team`.
pub(crate) fn member_ctx(team: Arc<TeamShared>, tid: usize) -> ThreadCtx {
    ThreadCtx {
        team: Some(team),
        thread_num: tid,
        encounters: HashMap::new(),
        barriers_passed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_ctx_is_sequential() {
        let ctx = ThreadCtx::initial();
        assert_eq!(ctx.thread_num(), 0);
        assert_eq!(ctx.num_threads(), 1);
        assert!(!ctx.in_parallel());
        assert!(ctx.is_master());
        assert_eq!(ctx.active_level(), 0);
    }

    #[test]
    fn single_outside_team_always_chosen() {
        let mut ctx = ThreadCtx::initial();
        assert!(ctx.enter_single(7));
        assert!(ctx.enter_single(7)); // next encounter, new instance
    }

    #[test]
    fn single_in_team_exactly_one() {
        let team = new_team(4, 1);
        let mut ctxs: Vec<ThreadCtx> = (0..4).map(|t| member_ctx(team.clone(), t)).collect();
        let chosen: usize = ctxs.iter_mut().map(|c| c.enter_single(3) as usize).sum();
        assert_eq!(chosen, 1);
        // Next encounter: again exactly one.
        let chosen: usize = ctxs.iter_mut().map(|c| c.enter_single(3) as usize).sum();
        assert_eq!(chosen, 1);
    }

    #[test]
    fn sections_round_robin() {
        let team = new_team(2, 1);
        let mut c0 = member_ctx(team.clone(), 0);
        let mut c1 = member_ctx(team.clone(), 1);
        assert!(c0.enter_section(5, 0));
        assert!(!c1.enter_section(5, 0));
        assert!(!c0.enter_section(5, 1));
        assert!(c1.enter_section(5, 1));
        assert!(c0.enter_section(5, 2));
    }

    #[test]
    fn static_chunks_partition_range() {
        let team = new_team(3, 1);
        let total: Vec<(i64, i64)> = (0..3)
            .map(|t| member_ctx(team.clone(), t).static_chunk(0, 10))
            .collect();
        // Chunks must tile [0, 10) without overlap.
        assert_eq!(total[0].0, 0);
        let mut covered = 0;
        for i in 0..3 {
            assert!(total[i].0 <= total[i].1);
            covered += total[i].1 - total[i].0;
            if i > 0 {
                assert_eq!(total[i].0, total[i - 1].1);
            }
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn static_chunk_empty_range() {
        let team = new_team(4, 1);
        let c = member_ctx(team, 2);
        let (s, e) = c.static_chunk(5, 5);
        assert_eq!(s, e);
    }

    #[test]
    fn static_chunk_fewer_iterations_than_threads() {
        let team = new_team(8, 1);
        let mut nonempty = 0;
        for t in 0..8 {
            let (s, e) = member_ctx(team.clone(), t).static_chunk(0, 3);
            if e > s {
                nonempty += 1;
            }
        }
        assert_eq!(nonempty, 3);
    }
}
