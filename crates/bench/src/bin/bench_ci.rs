//! CI perf-regression gate.
//!
//! Measures the fig1 micro-bench (full `compile_with_codegen` per
//! class-A workload), one end-to-end detection pass over the error
//! catalogue, and the HERA class-B static-analysis speedup at
//! `jobs = 4` vs `jobs = 1`; writes everything to a flat JSON file and
//! compares against a checked-in baseline.
//!
//! Robustness, in layers:
//! * **Cross-machine**: gated numbers are normalized by an arithmetic
//!   *calibration* spin timed in the same run, so a uniformly slower CI
//!   runner does not trip the gate — only a change in the *shape* of
//!   the cost does.
//! * **Cross-run noise**: the gate compares two *aggregates* (total
//!   fig1 compile time, detection-table wall clock) rather than
//!   individual sub-millisecond compiles whose minima still jitter by
//!   tens of percent on busy runners; per-workload times are recorded
//!   as `info/` for humans. A gated aggregate that lands over tolerance
//!   is re-measured up to two times and the fastest attempt kept — a
//!   real regression fails every attempt, a descheduling spike does
//!   not.
//!
//! ```text
//! bench_ci [--out FILE] [--baseline FILE] [--phases-out FILE]
//!          [--tolerance PCT] [--write-baseline FILE]
//! ```
//!
//! Exit codes: 0 = ok, 1 = regression (> tolerance) or detection
//! failure, 3 = usage error.

use parcoach_bench::{
    bench_session, bench_session_with, compile_suite_concurrent, compile_with_codegen,
    lower_workload, measure, static_phase_breakdown,
};
use parcoach_core::AnalysisSession;
use parcoach_front::parse_and_check;
use parcoach_interp::{check_and_run, RunConfig};
use parcoach_ir::lower::lower_program;
use parcoach_workloads::{
    error_catalogue, figure1_suite, ExpectDynamic, ExpectStatic, Workload, WorkloadClass,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Repetitions per workload for the compile benches. The per-workload
/// minimum is the least noise-contaminated estimate of a CPU-bound
/// compile; the gate sums those minima.
const COMPILE_REPS: usize = 15;
/// Repetitions for the informational analyze speedup probe.
const ANALYZE_REPS: usize = 21;
/// Repetitions for the per-phase breakdown probes (min per phase).
const PHASE_REPS: usize = 15;
/// Extra measurement attempts for a gated aggregate that lands over
/// tolerance (the fastest attempt is kept).
const GATE_RETRIES: usize = 2;
/// Default regression tolerance on normalized ratios, percent.
const DEFAULT_TOLERANCE: f64 = 25.0;
/// Wall-clock watchdog per catalogue case in the detection pass. Every
/// case resolves in well under a second (the deadlocking ones via the
/// liveness census / wait-for graph, not timeouts); a case still
/// running after this long has regressed into a real hang — fail the
/// gate in seconds instead of stalling the job until the runner
/// timeout.
const CASE_WATCHDOG: Duration = Duration::from_secs(20);

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("bench_ci: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut out_path = "BENCH_ci.json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut phases_path = "BENCH_phases.json".to_string();
    let mut write_baseline: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--out" => out_path = take(&mut i)?,
            "--baseline" => baseline_path = take(&mut i)?,
            "--phases-out" => phases_path = take(&mut i)?,
            "--write-baseline" => write_baseline = Some(take(&mut i)?),
            "--tolerance" => {
                tolerance = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let baseline =
        match &write_baseline {
            Some(_) => None,
            None => {
                let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
                    format!("read baseline {baseline_path}: {e} (create one with --write-baseline)")
                })?;
                Some(parse_flat_json(&text).ok_or_else(|| {
                    format!("{baseline_path}: not a flat JSON object of integers")
                })?)
            }
        };

    let mut results: BTreeMap<String, u64> = BTreeMap::new();
    let mut gate_ok = true;

    // --- calibration -----------------------------------------------------
    let calibration_ns = calibrate();
    results.insert("calibration_ns".into(), calibration_ns);
    println!("calibration: {:.3} ms", calibration_ns as f64 / 1e6);

    // Warm every compile path (and the pool) before the first timed
    // sample: the first workload otherwise pays one-off cold costs —
    // lazy relocations, branch-predictor and allocator warm-up — that
    // the baseline run did not, which reads as a phantom regression.
    let suite = figure1_suite(WorkloadClass::A);
    let _ = compile_suite_concurrent(&suite);

    // The single-CPU-baseline NOTE is printed at most once per run (it
    // repeats identically per gated key otherwise and drowns CI logs).
    let mut slack_note_printed = false;

    // --- fig1 micro-bench (gated on the suite total) ----------------------
    let (mut fig1_total, per_workload) = measure_fig1(&suite);
    gate_ok &= gate(
        "bench/fig1_total",
        &mut fig1_total,
        calibration_ns,
        baseline.as_ref(),
        tolerance,
        &mut slack_note_printed,
        || measure_fig1(&suite).0,
    );
    for (name, ns) in &per_workload {
        println!(
            "  fig1/{name:<8} min {:>9.3} ms  (x{:.3} cal)",
            *ns as f64 / 1e6,
            *ns as f64 / calibration_ns as f64
        );
    }
    results.insert("bench/fig1_total".into(), fig1_total);
    for (name, ns) in per_workload {
        results.insert(format!("info/fig1/{name}"), ns);
    }

    // --- detection table (gated wall-clock + correctness) ----------------
    let mut detection_ok = true;
    let mut run_detection = || {
        let t0 = Instant::now();
        let ok = detection_pass();
        detection_ok &= ok;
        t0.elapsed().as_nanos() as u64
    };
    let mut detection_ns = run_detection();
    gate_ok &= gate(
        "bench/detection_table",
        &mut detection_ns,
        calibration_ns,
        baseline.as_ref(),
        tolerance,
        &mut slack_note_printed,
        &mut run_detection,
    );
    println!(
        "detection_table: {:.3} ms, {}",
        detection_ns as f64 / 1e6,
        if detection_ok {
            "all cases ok"
        } else {
            "CASE FAILURES"
        }
    );
    results.insert("bench/detection_table".into(), detection_ns);

    // --- HERA-B analyze speedup (informational) --------------------------
    let (jobs1_ns, jobs4_ns, identical) = analyze_speedup();
    results.insert("info/analyze_hera_b_jobs1_ns".into(), jobs1_ns);
    results.insert("info/analyze_hera_b_jobs4_ns".into(), jobs4_ns);
    let speedup = jobs1_ns as f64 / jobs4_ns.max(1) as f64;
    results.insert(
        "info/analyze_hera_b_speedup_x1000".into(),
        (speedup * 1000.0) as u64,
    );
    println!(
        "analyze HERA/B: jobs=1 {:.3} ms, jobs=4 {:.3} ms  → {speedup:.2}x speedup, reports {}",
        jobs1_ns as f64 / 1e6,
        jobs4_ns as f64 / 1e6,
        if identical {
            "byte-identical"
        } else {
            "DIFFER"
        }
    );

    // --- incremental warm re-check vs cold one-shot (absolute gate) ------
    // The PR's acceptance bar: a warm single-function re-check must be
    // at least 10x faster than a cold full analysis. The gate is
    // absolute (both numbers come from the same run on the same
    // machine), so it needs no baseline entry.
    let (cold_ns, warm_ns, warm_identical) = incremental_latency();
    results.insert("info/incr/hera_b/cold_full_ns".into(), cold_ns);
    results.insert("info/incr/hera_b/warm_recheck_ns".into(), warm_ns);
    let incr_speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    results.insert(
        "info/incr/hera_b/speedup_x1000".into(),
        (incr_speedup * 1000.0) as u64,
    );
    let incr_ok = incr_speedup >= 10.0 && warm_identical;
    println!(
        "incremental HERA/B: cold {:.3} ms, warm re-check {:.3} ms  → {incr_speedup:.1}x, \
         reports {} — {}",
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6,
        if warm_identical {
            "byte-identical"
        } else {
            "DIFFER"
        },
        if incr_ok {
            "ok (>= 10x)"
        } else {
            "GATE FAILURE"
        }
    );

    // --- module-memo warm re-check (absolute gate) -----------------------
    // The module-level memo's acceptance bar: an edit that touches NO
    // comm/request/p2p events must reuse the module-wide match tables
    // wholesale, so the whole-module warm re-check stays within 2x the
    // single-function warm number measured above — same run, same
    // machine, no baseline entry needed.
    let (module_warm_ns, module_identical, memo_live) = module_warm_latency();
    results.insert("info/incr/hera_b/module_warm_ns".into(), module_warm_ns);
    let module_ok = module_warm_ns <= 2 * warm_ns && module_identical && memo_live;
    println!(
        "module-memo HERA/B: warm whole-module {:.3} ms (bound 2x single-function = {:.3} ms), \
         reports {}, module tables {} — {}",
        module_warm_ns as f64 / 1e6,
        (2 * warm_ns) as f64 / 1e6,
        if module_identical {
            "byte-identical"
        } else {
            "DIFFER"
        },
        if memo_live { "reused" } else { "NOT REUSED" },
        if module_ok { "ok" } else { "GATE FAILURE" }
    );

    // --- per-phase static-analysis breakdown (informational) -------------
    // The fact-store refactor's target metric: `matching` no longer
    // recomputes per-block frontiers per event set. Recorded per phase
    // into the main JSON (trend spelunking) and mirrored into a compact
    // phases-only file uploaded as its own CI artifact; the cached vs
    // uncached totals are the E10 memoization ablation.
    let phase_records = phase_breakdown();
    let mut phases_only: BTreeMap<String, u64> = BTreeMap::new();
    phases_only.insert("calibration_ns".into(), calibration_ns);
    for (key, ns) in &phase_records {
        results.insert(format!("info/{key}"), *ns);
        phases_only.insert(key.clone(), *ns);
    }

    // Absolute latency bar on the default (incremental-worklist) driver:
    // a full cold static analysis of HERA class B must finish under
    // 0.4 ms. Like the warm-re-check gate above, this needs no baseline
    // entry — the bound is a property of the analysis, not the machine.
    const HERA_B_TOTAL_BOUND_NS: u64 = 400_000;
    let hera_total_ns = phase_records
        .iter()
        .find(|(k, _)| k == "phase/hera_b/total_ns")
        .map(|(_, ns)| *ns)
        .unwrap_or(u64::MAX);
    let hera_ok = hera_total_ns < HERA_B_TOTAL_BOUND_NS;
    println!(
        "hera_b cold analysis: {:.3} ms (bound {:.1} ms) — {}",
        hera_total_ns as f64 / 1e6,
        HERA_B_TOTAL_BOUND_NS as f64 / 1e6,
        if hera_ok { "ok" } else { "GATE FAILURE" }
    );

    // --- simulator fast-path rows (absolute gates) -----------------------
    // Acceptance bars of the sharded-matching-space simulator work. All
    // three are absolute bounds — the speed comes from census-driven
    // verdicts replacing timeout waits, a property of the simulator,
    // not the machine — with generous headroom over the measured
    // numbers so runner noise cannot trip them while a fallback to
    // timeout-driven detection (hundreds of ms per deadlock case)
    // always does.
    const SIM_DETECTION_BOUND_NS: u64 = 500_000_000;
    const SIM_ORACLE_MODULE_BOUND_NS: u64 = 5_000_000;
    const SIM_FUZZ_MPS_BOUND: u64 = 100;
    results.insert("sim/detection_table_ns".into(), detection_ns);
    let (oracle_module_ns, fuzz_mps) = sim_oracle_bench();
    results.insert("sim/oracle_module_ns".into(), oracle_module_ns);
    results.insert("sim/fuzz_modules_per_s".into(), fuzz_mps);
    let sim_ok = detection_ns < SIM_DETECTION_BOUND_NS
        && oracle_module_ns < SIM_ORACLE_MODULE_BOUND_NS
        && fuzz_mps > SIM_FUZZ_MPS_BOUND;
    println!(
        "sim fast path: detection_table {:.1} ms (bound {:.0} ms), oracle {:.3} ms/module \
         (bound {:.0} ms), fuzz {fuzz_mps} modules/s (bound > {SIM_FUZZ_MPS_BOUND}) — {}",
        detection_ns as f64 / 1e6,
        SIM_DETECTION_BOUND_NS as f64 / 1e6,
        oracle_module_ns as f64 / 1e6,
        SIM_ORACLE_MODULE_BOUND_NS as f64 / 1e6,
        if sim_ok { "ok" } else { "GATE FAILURE" }
    );

    // --- write ------------------------------------------------------------
    let json = to_json(&results);
    std::fs::write(&out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    let phases_json = to_json(&phases_only);
    std::fs::write(&phases_path, &phases_json).map_err(|e| format!("write {phases_path}: {e}"))?;
    println!("wrote {phases_path}");
    if let Some(p) = write_baseline {
        std::fs::write(&p, &json).map_err(|e| format!("write {p}: {e}"))?;
        println!("wrote baseline {p}");
        return Ok(detection_ok && identical && incr_ok && module_ok && hera_ok && sim_ok);
    }
    Ok(gate_ok && detection_ok && identical && incr_ok && module_ok && hera_ok && sim_ok)
}

/// Average full-oracle latency (parse → analyze → instrument → simulate
/// under the watchdog) over 50 fixed-seed generator modules, and the
/// resulting throughput in modules/s. Generation is pre-rendered so the
/// timing covers the oracle alone.
fn sim_oracle_bench() -> (u64, u64) {
    use parcoach_fuzz::{module_seed, observe, OracleConfig, OracleOutcome};
    const MODULES: u64 = 50;
    let cfg = OracleConfig::default();
    let sources: Vec<String> = (0..MODULES)
        .map(|i| criterion::Scenario::generate(module_seed(42, i)).render())
        .collect();
    let t0 = Instant::now();
    for (i, src) in sources.iter().enumerate() {
        if let OracleOutcome::Invalid(d) = observe(&format!("bench_{i}.mh"), src, &cfg) {
            panic!("generator produced invalid module {i}: {d}");
        }
    }
    let total = t0.elapsed();
    let per_module = total.as_nanos() as u64 / MODULES;
    let mps = (MODULES as f64 / total.as_secs_f64()) as u64;
    (per_module, mps)
}

/// Minimum compile time per workload; returns the suite total and the
/// per-workload breakdown.
fn measure_fig1(suite: &[Workload]) -> (u64, BTreeMap<String, u64>) {
    let mut per_workload = BTreeMap::new();
    let mut total = 0u64;
    for w in suite {
        let t = measure(COMPILE_REPS, || {
            let _ = compile_with_codegen(w.name, &w.source);
        });
        let ns = t.min.as_nanos() as u64;
        total += ns;
        per_workload.insert(w.name.to_string(), ns);
    }
    (total, per_workload)
}

/// Check one gated aggregate against the baseline, re-measuring (and
/// keeping the fastest attempt) while it reads over tolerance. Returns
/// whether the metric passes; `current` is updated to the kept attempt.
/// `slack_note_printed` suppresses repeats of the baseline-slack NOTE
/// across gated keys within one run.
#[allow(clippy::too_many_arguments)]
fn gate(
    key: &str,
    current: &mut u64,
    calibration_ns: u64,
    baseline: Option<&BTreeMap<String, u64>>,
    tolerance: f64,
    slack_note_printed: &mut bool,
    mut remeasure: impl FnMut() -> u64,
) -> bool {
    let Some(base) = baseline else {
        return true; // --write-baseline mode
    };
    let (Some(&base_ns), Some(&base_cal)) = (base.get(key), base.get("calibration_ns")) else {
        eprintln!("{key}: missing from baseline — regenerate it with --write-baseline");
        return false;
    };
    let base_ratio = base_ns as f64 / base_cal as f64;
    let limit = base_ratio * (1.0 + tolerance / 100.0);
    let mut attempts = 0;
    loop {
        let ratio = *current as f64 / calibration_ns as f64;
        let delta = (ratio / base_ratio - 1.0) * 100.0;
        if ratio <= limit {
            println!("{key:<24} base x{base_ratio:>7.3}  now x{ratio:>7.3}  ({delta:>+6.1}%)  ok");
            // A ratio far *below* baseline means the baseline was
            // recorded on differently-shaped hardware (e.g. a 1-CPU
            // box where pooled work serialized) and the gate is running
            // with that much slack — it cannot catch a regression
            // smaller than the gap. Tell the operator to tighten it —
            // once per run, with the actual calibration ratios so the
            // log shows how much slack there is.
            if ratio < base_ratio * 0.6 && !*slack_note_printed {
                *slack_note_printed = true;
                println!(
                    "NOTE: {key} runs {:.0}% below baseline (x{ratio:.3} cal now vs \
                     x{base_ratio:.3} cal recorded) — baseline looks recorded on \
                     slower/differently-shaped hardware; refresh it on this machine with \
                     --write-baseline to restore the gate's sensitivity \
                     (further per-key notes suppressed this run)",
                    -delta
                );
            }
            return true;
        }
        if attempts >= GATE_RETRIES {
            println!(
                "{key:<24} base x{base_ratio:>7.3}  now x{ratio:>7.3}  ({delta:>+6.1}%)  REGRESSION"
            );
            return false;
        }
        attempts += 1;
        println!(
            "{key:<24} over tolerance ({delta:>+6.1}%) — remeasuring (attempt {attempts}/{GATE_RETRIES})"
        );
        *current = (*current).min(remeasure());
    }
}

/// Single-threaded arithmetic spin: the machine-speed yardstick. Many
/// ~2 ms spins (the compiles' timescale) with the minimum taken, so
/// both sides of the `bench / calibration` ratio dodge scheduler and
/// cgroup throttling windows the same way.
fn calibrate() -> u64 {
    let spin = || {
        let mut x = 0x9E37_79B9u64;
        for _ in 0..1_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x)
    };
    let t = measure(31, || {
        spin();
    });
    t.min.as_nanos() as u64
}

/// Run one catalogue case on a watchdog thread: `None` when the
/// simulator run exceeded [`CASE_WATCHDOG`] (the hung worker is left
/// detached — the gate reports and exits; the process does not wait on
/// it). A worker that *panics* is reported as an error, not a hang.
#[allow(clippy::type_complexity)]
fn run_case_with_watchdog(
    id: &'static str,
    source: String,
) -> Option<Result<(parcoach_core::StaticReport, parcoach_interp::RunReport), String>> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(check_and_run(id, &source, RunConfig::fast_fail(2, 4), true));
    });
    match rx.recv_timeout(CASE_WATCHDOG) {
        Ok(outcome) => Some(outcome),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Some(Err(
            "case worker panicked before producing a result (see stderr backtrace)".into(),
        )),
    }
}

/// One instrumented run per catalogue case; true when every case behaves
/// as the paper predicts (same checks as the `detection_table` bin).
/// Each case runs under a wall-clock watchdog so a regression that
/// introduces a genuine deadlock fails the gate instead of hanging it.
fn detection_pass() -> bool {
    let mut all_ok = true;
    for case in error_catalogue() {
        let Some(outcome) = run_case_with_watchdog(case.id, case.source.clone()) else {
            eprintln!(
                "{}: WATCHDOG — still running after {}s; the simulator hung \
                 (deadlock-detection regression?)",
                case.id,
                CASE_WATCHDOG.as_secs()
            );
            all_ok = false;
            continue;
        };
        let (report, run) = match outcome {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{}: {e}", case.id);
                all_ok = false;
                continue;
            }
        };
        let static_ok = match case.expect_static {
            ExpectStatic::Clean => report.is_clean(),
            ExpectStatic::Warns(code) => report.warnings.iter().any(|w| w.kind.code() == code),
        };
        let dynamic_ok = match case.expect_dynamic {
            ExpectDynamic::Clean => run.is_clean(),
            ExpectDynamic::CaughtByCheck => !run.is_clean() && run.detected_by_check(),
            ExpectDynamic::CaughtBySubstrate | ExpectDynamic::Fails => !run.is_clean(),
            ExpectDynamic::MayFail => true,
        };
        if !(static_ok && dynamic_ok) {
            eprintln!(
                "{}: unexpected behavior (static_ok={static_ok}, dynamic_ok={dynamic_ok})",
                case.id
            );
            all_ok = false;
        }
    }
    all_ok
}

/// Per-phase static-analysis minima for the EPCC and HERA class-B
/// workloads on a 1-lane deterministic pool (at `jobs = 1` the
/// per-function phase sums equal wall time, so the breakdown is
/// directly comparable run to run), plus the E10 memoization ablation:
/// the same analysis with the PDF+ memo disabled (`pdf_memo: false`,
/// the recompute-per-event-set engine the fact store replaced).
fn phase_breakdown() -> Vec<(String, u64)> {
    let mut memo_on = bench_session(true);
    let mut memo_off = bench_session(false);
    // E13 ablation: same analysis with the legacy full-re-walk context
    // driver (`incr_fixpoint: false`) — the round loop the worklist
    // replaced. Only `contexts`/`total` differ between the drivers.
    let mut legacy_fixpoint = bench_session_with(true, false);
    let mut out = Vec::new();
    for (label, w) in [
        (
            "epcc_b",
            parcoach_workloads::epcc::generate(WorkloadClass::B),
        ),
        (
            "hera_b",
            parcoach_workloads::hera::generate(WorkloadClass::B),
        ),
    ] {
        let module = lower_workload(&w);
        let cached = static_phase_breakdown(&module, &mut memo_on, PHASE_REPS);
        let uncached = static_phase_breakdown(&module, &mut memo_off, PHASE_REPS);
        let legacy = static_phase_breakdown(&module, &mut legacy_fixpoint, PHASE_REPS);
        for (phase, dur) in cached.lines() {
            out.push((format!("phase/{label}/{phase}_ns"), dur.as_nanos() as u64));
        }
        out.push((
            format!("phase/{label}/matching_uncached_ns"),
            uncached.matching.as_nanos() as u64,
        ));
        out.push((
            format!("phase/{label}/total_uncached_ns"),
            uncached.total.as_nanos() as u64,
        ));
        out.push((
            format!("phase/{label}/contexts_legacy_ns"),
            legacy.contexts.as_nanos() as u64,
        ));
        out.push((
            format!("phase/{label}/total_legacy_ns"),
            legacy.total.as_nanos() as u64,
        ));
        let ratio = uncached.matching.as_secs_f64() / cached.matching.as_secs_f64().max(1e-9);
        let ctx_ratio = legacy.contexts.as_secs_f64() / cached.contexts.as_secs_f64().max(1e-9);
        println!(
            "phases {label}: total {:.3} ms, matching {:.3} ms \
             (uncached PDF+ matching {:.3} ms → {ratio:.2}x), contexts {:.3} ms \
             (legacy fixpoint {:.3} ms → {ctx_ratio:.2}x)",
            cached.total.as_secs_f64() * 1e3,
            cached.matching.as_secs_f64() * 1e3,
            uncached.matching.as_secs_f64() * 1e3,
            cached.contexts.as_secs_f64() * 1e3,
            legacy.contexts.as_secs_f64() * 1e3,
        );
    }
    out
}

/// Median analyze time of HERA class B under a 1-lane and a 4-lane
/// deterministic pool, plus whether the two reports are byte-identical.
fn analyze_speedup() -> (u64, u64, bool) {
    let w: Workload = parcoach_workloads::hera::generate(WorkloadClass::B);
    let unit = parse_and_check(w.name, &w.source).expect("workload compiles");
    let module = lower_program(&unit.program, &unit.signatures);
    let session = |jobs| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(42)
            .build()
    };
    let (mut s1, mut s4) = (session(1), session(4));
    let r1 = s1.check_module(&module);
    let r4 = s4.check_module(&module);
    let identical = format!("{r1:?}") == format!("{r4:?}");
    let t1 = measure(ANALYZE_REPS, || {
        let _ = s1.check_module(&module);
    });
    let t4 = measure(ANALYZE_REPS, || {
        let _ = s4.check_module(&module);
    });
    (
        t1.median.as_nanos() as u64,
        t4.median.as_nanos() as u64,
        identical,
    )
}

/// The daemon's headline number: cold one-shot check of HERA class B
/// (full front-end + fresh analysis, what `parcoachc check` pays) vs a
/// warm re-check in a resident incremental session after a
/// single-function edit. The edit alternates one probe function between
/// two bodies, so every warm rep re-fingerprints the module, recomputes
/// exactly that function's parallelism word and CFG facts, and reuses
/// the rest — the steady state `parcoachd` serves. Returns
/// `(cold_ns, warm_ns, identical)` where `identical` compares the warm
/// report byte-for-byte against a cold fresh-session report of the same
/// edited module.
fn incremental_latency() -> (u64, u64, bool) {
    let w: Workload = parcoach_workloads::hera::generate(WorkloadClass::B);
    let variant = |body: &str| format!("{}\nfn bench_ci_probe() {{ {body} }}\n", w.source);
    let (src_a, src_b) = (
        variant("MPI_Barrier();"),
        variant("MPI_Barrier(); MPI_Barrier();"),
    );
    let compile = |src: &str| {
        let unit = parse_and_check(w.name, src).expect("workload compiles");
        lower_program(&unit.program, &unit.signatures)
    };
    let session = |jobs| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(42)
            .build()
    };

    let cold = measure(ANALYZE_REPS, || {
        let module = compile(&src_a);
        let _ = session(1).check_module(&module);
    });

    let (module_a, module_b) = (compile(&src_a), compile(&src_b));
    let mut warm_session = AnalysisSession::builder()
        .jobs(1)
        .deterministic(true)
        .seed(42)
        .incremental(true)
        .build();
    let _ = warm_session.check_module(&module_b);
    warm_session.mark_edited("bench_ci_probe");
    let warm_report = warm_session.check_module(&module_a);
    let cold_report = session(1).check_module(&module_a);
    let identical = format!("{warm_report:?}") == format!("{cold_report:?}");

    let mut flip = false;
    let warm = measure(ANALYZE_REPS, || {
        flip = !flip;
        // The edited-function dirty mark is part of the session contract
        // (the daemon's `edit` issues it); the re-check then
        // re-fingerprints and re-derives exactly this function.
        warm_session.mark_edited("bench_ci_probe");
        let _ = warm_session.check_module(if flip { &module_b } else { &module_a });
    });
    // Minimum over reps, like every other latency metric here: the
    // single-core CI runners have enough scheduler noise to swing a
    // median by 25%, and the minimum is the standard low-noise
    // estimator for a deterministic computation.
    (
        cold.min.as_nanos() as u64,
        warm.min.as_nanos() as u64,
        identical,
    )
}

/// The module-memo counterpart of [`incremental_latency`]: the probe
/// flips between two bodies with NO comm/request/p2p events, so every
/// warm rep re-fingerprints the module and re-derives the probe's local
/// facts but finds the module-wide comm/request/p2p match tables
/// fingerprint-clean and reuses them wholesale. Returns
/// `(warm_module_ns, identical, memo_live)` — `identical` compares the
/// warm report against a cold fresh-session report of the same edited
/// module; `memo_live` certifies the timed loop actually hit the module
/// tables (otherwise the ≤ 2x gate would vacuously time the rebuild
/// path).
fn module_warm_latency() -> (u64, bool, bool) {
    let w: Workload = parcoach_workloads::hera::generate(WorkloadClass::B);
    let variant = |body: &str| format!("{}\nfn bench_ci_probe() {{ {body} }}\n", w.source);
    let (src_a, src_b) = (
        variant("let acc = 1;"),
        variant("let acc = 1; let adj = 2;"),
    );
    let compile = |src: &str| {
        let unit = parse_and_check(w.name, src).expect("workload compiles");
        lower_program(&unit.program, &unit.signatures)
    };
    let (module_a, module_b) = (compile(&src_a), compile(&src_b));
    let mut warm_session = AnalysisSession::builder()
        .jobs(1)
        .deterministic(true)
        .seed(42)
        .incremental(true)
        .build();
    let _ = warm_session.check_module(&module_b);
    warm_session.mark_edited("bench_ci_probe");
    let warm_report = warm_session.check_module(&module_a);
    let mut cold_session = AnalysisSession::builder()
        .jobs(1)
        .deterministic(true)
        .seed(42)
        .build();
    let cold_report = cold_session.check_module(&module_a);
    let identical = format!("{warm_report:?}") == format!("{cold_report:?}");

    let before = warm_session.query_stats();
    let mut flip = false;
    let warm = measure(ANALYZE_REPS, || {
        flip = !flip;
        warm_session.mark_edited("bench_ci_probe");
        let _ = warm_session.check_module(if flip { &module_b } else { &module_a });
    });
    let after = warm_session.query_stats();
    // Every timed rep must have reused the comm and p2p module tables
    // without a single rebuild.
    let memo_live = after.comm_hits > before.comm_hits
        && after.p2p_hits > before.p2p_hits
        && after.comm_misses == before.comm_misses
        && after.p2p_misses == before.p2p_misses;
    (warm.min.as_nanos() as u64, identical, memo_live)
}

// --- flat JSON (no external deps) ----------------------------------------

/// Serialize string→integer pairs as a stable, human-diffable object.
fn to_json(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v}"));
    }
    out.push_str("\n}\n");
    out
}

/// Parse the subset emitted by [`to_json`]: one flat object of
/// string-keyed integers (whitespace-insensitive).
fn parse_flat_json(text: &str) -> Option<BTreeMap<String, u64>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value: u64 = value.trim().parse().ok()?;
        map.insert(key.to_string(), value);
    }
    Some(map)
}
