//! E10 (extension) — PDF+ memoization ablation.
//!
//! The fact store computes each function's per-block post-dominance
//! frontiers **once** and serves every event set's `PDF+` from a
//! memoizing engine; before the refactor the matching phase recomputed
//! the full frontier per event set. This ablation runs the static
//! analysis with the memo on (`pdf_memo: true`, the default) and off
//! (the legacy recompute path, kept report-identical — pinned by the
//! `fact_store_matches_legacy_reports` property test) and reports the
//! per-workload analysis and matching-phase minima.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin ablation_pdf_memo [A|B|C] [reps]`

use parcoach_bench::{bench_session, lower_workload, static_phase_breakdown};
use parcoach_workloads::{figure1_suite, WorkloadClass};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("A") => WorkloadClass::A,
        Some("C") => WorkloadClass::C,
        _ => WorkloadClass::B,
    };
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    // See `bench_session`: 1-lane deterministic pool, memo on vs off.
    let mut cached = bench_session(true);
    let mut uncached = bench_session(false);

    println!("E10 — PDF+ memoization ablation (class {class:?}, {reps} reps, min)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "bench", "analyze", "analyze-uncached", "matching", "matching-unc", "match x"
    );
    for w in figure1_suite(class) {
        let module = lower_workload(&w);
        let cached = static_phase_breakdown(&module, &mut cached, reps);
        let uncached = static_phase_breakdown(&module, &mut uncached, reps);
        let ms = |d: std::time::Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
        let ratio = uncached.matching.as_secs_f64() / cached.matching.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14} {:>8.2}x",
            w.name,
            ms(cached.total),
            ms(uncached.total),
            ms(cached.matching),
            ms(uncached.matching),
            ratio,
        );
    }
}
