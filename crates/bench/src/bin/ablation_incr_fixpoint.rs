//! E13 (extension) — incremental context-fixpoint ablation.
//!
//! The context-propagation phase used to re-walk every changed function
//! up to `3·n` rounds, recomputing each parallelism-word pass from
//! scratch; the incremental worklist driver re-propagates only functions
//! whose entry context actually rose and serves per-call-site contexts
//! from the hash-consed delta query. This ablation runs the static
//! analysis with the worklist on (`incr_fixpoint: true`, the default)
//! and off (the legacy round loop, kept report-identical — pinned by the
//! `incr_fixpoint_matches_legacy_reports` property test) and reports the
//! per-workload analysis and contexts-phase minima.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin ablation_incr_fixpoint [A|B|C] [reps]`

use parcoach_bench::{bench_session_with, lower_workload, static_phase_breakdown};
use parcoach_workloads::{figure1_suite, WorkloadClass};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("A") => WorkloadClass::A,
        Some("C") => WorkloadClass::C,
        _ => WorkloadClass::B,
    };
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    // See `bench_session_with`: 1-lane deterministic pool, pdf memo on
    // in both sessions so the only variable is the fixpoint driver.
    let mut worklist = bench_session_with(true, true);
    let mut legacy = bench_session_with(true, false);

    println!("E13 — incremental context-fixpoint ablation (class {class:?}, {reps} reps, min)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "bench", "analyze", "analyze-legacy", "contexts", "contexts-leg", "ctx x"
    );
    for w in figure1_suite(class) {
        let module = lower_workload(&w);
        let incr = static_phase_breakdown(&module, &mut worklist, reps);
        let full = static_phase_breakdown(&module, &mut legacy, reps);
        let ms = |d: std::time::Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
        let ratio = full.contexts.as_secs_f64() / incr.contexts.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14} {:>8.2}x",
            w.name,
            ms(incr.total),
            ms(full.total),
            ms(incr.contexts),
            ms(full.contexts),
            ratio,
        );
    }
}
