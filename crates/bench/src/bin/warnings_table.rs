//! E2 (extension) — static warning counts per benchmark, in the style of
//! the companion IJHPCA PARCOACH evaluation tables: how many potential
//! errors of each type the compile-time phase reports, and how much
//! instrumentation that demands.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin warnings_table [A|B|C]`

use parcoach_bench::compile_with_warnings;
use parcoach_core::WarningKind;
use parcoach_workloads::{figure1_suite, WorkloadClass};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("A") => WorkloadClass::A,
        Some("C") => WorkloadClass::C,
        _ => WorkloadClass::B,
    };
    let kinds = [
        (WarningKind::MultithreadedCollective, "mt-coll"),
        (WarningKind::NestedParallelismCollective, "nested"),
        (WarningKind::MultithreadedCall, "mt-call"),
        (WarningKind::ConcurrentCollectives, "conc"),
        (WarningKind::SelfConcurrentRegion, "self-conc"),
        (WarningKind::CollectiveMismatch, "mismatch"),
        (WarningKind::BarrierDivergence, "barrier-div"),
        (WarningKind::InsufficientThreadLevel, "level"),
    ];
    println!("E2 — static warnings per benchmark (class {class:?})");
    print!("{:<8} {:>7}", "bench", "lines");
    for (_, label) in &kinds {
        print!(" {label:>11}");
    }
    println!(" {:>9} {:>9} {:>9}", "CC-sites", "mono-chk", "conc-site");
    for w in figure1_suite(class) {
        let (_m, report) = compile_with_warnings(w.name, &w.source);
        print!("{:<8} {:>7}", w.name, w.lines());
        for (kind, _) in &kinds {
            print!(" {:>11}", report.count(*kind));
        }
        println!(
            " {:>9} {:>9} {:>9}",
            report.plan.suspect_collectives.len(),
            report.plan.monothread_checks.len(),
            report.plan.concurrency_sites.len()
        );
    }
    println!();
    println!(
        "note: `mismatch` counts are conditional-communication sites the static \
         phase cannot prove uniform — the false-positive class the dynamic CC \
         validates at run time (paper §3)."
    );
}
