//! E15 (extension) — simulator fast-path ablation.
//!
//! Two independent toggles on the instrumented-execution side, crossed:
//!
//! * **world lock** — the sharded per-communicator matching spaces and
//!   per-`(comm, dst)` mailbox shards (default) vs. the legacy engine
//!   that serializes every simulated MPI call on one world mutex
//!   (`RunConfig::legacy_world_lock`);
//! * **value interning** — the interpreter's allocation-reuse paths:
//!   pooled frame slots and one-pass print rendering (default) vs.
//!   fresh allocations per frame and per print
//!   (`RunConfig::value_interning = false`).
//!
//! Both toggles are observationally invisible — the `sim_equivalence`
//! property test and the fuzz-smoke `--legacy-world-lock` `cmp` pin
//! the world-lock axis, and the determinism suite pins the interning
//! axis — so the only thing that varies here is wall clock. Each
//! module is parsed, analyzed and instrumented **once**; the timed
//! region is execution only, which is where both toggles live.
//!
//! A calibration pass drops modules whose single run exceeds 100 ms:
//! those are deadlocking scenarios resolved by the fast-fail *timeout
//! constants* (300/600 ms), so their wall clock measures the
//! configuration, not the engine, and one of them would drown the
//! entire sweep.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin ablation_sim_fastpath [modules] [reps]`

use criterion::Scenario;
use parcoach_core::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach_front::parse_and_check;
use parcoach_fuzz::module_seed;
use parcoach_interp::{Executor, RunConfig};
use parcoach_ir::lower::lower_program;
use parcoach_ir::Module;
use std::time::{Duration, Instant};

const SEED: u64 = 42;

fn prepare(modules: u64) -> Vec<Module> {
    let mut session = AnalysisSession::builder().build();
    (0..modules)
        .map(|i| {
            let src = Scenario::generate(module_seed(SEED, i)).render();
            let unit = parse_and_check(&format!("e15_{i}.mh"), &src)
                .unwrap_or_else(|(diags, sm)| panic!("module {i} invalid: {}", diags.render(&sm)));
            let module = lower_program(&unit.program, &unit.signatures);
            let report = session.check_module(&module);
            instrument_module(&module, &report, InstrumentMode::Selective).0
        })
        .collect()
}

fn main() {
    let modules: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let prepared = prepare(modules);

    // Calibration: drop timeout-bound modules (see module docs).
    let fast_cfg = RunConfig::fast_fail(2, 2);
    let prepared: Vec<Module> = prepared
        .into_iter()
        .filter(|m| {
            let t0 = Instant::now();
            let _ = Executor::new(m.clone(), fast_cfg.clone()).run();
            t0.elapsed() < Duration::from_millis(100)
        })
        .collect();
    let kept = prepared.len();

    println!(
        "E15 — simulator fast-path ablation ({kept} of {modules} modules kept \
         ({} timeout-bound dropped), {reps} reps, min)",
        modules as usize - kept
    );
    println!(
        "{:<24} {:>12} {:>14} {:>9}",
        "config", "total", "per module", "vs fast"
    );
    let mut fast = Duration::MAX;
    for (legacy_world_lock, value_interning) in
        [(false, true), (false, false), (true, true), (true, false)]
    {
        let mut cfg = RunConfig::fast_fail(2, 2);
        cfg.legacy_world_lock = legacy_world_lock;
        cfg.value_interning = value_interning;
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            for m in &prepared {
                let _ = Executor::new(m.clone(), cfg.clone()).run();
            }
            best = best.min(t0.elapsed());
        }
        if !legacy_world_lock && value_interning {
            fast = best;
        }
        let label = format!(
            "{}+{}",
            if legacy_world_lock {
                "legacy-lock"
            } else {
                "sharded"
            },
            if value_interning {
                "interning"
            } else {
                "no-interning"
            }
        );
        println!(
            "{:<24} {:>9.3} ms {:>11.3} ms {:>8.2}x",
            label,
            best.as_secs_f64() * 1e3,
            best.as_secs_f64() * 1e3 / kept.max(1) as f64,
            best.as_secs_f64() / fast.as_secs_f64().max(1e-9),
        );
    }
}
