//! E5 (extension) — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Selective vs. full instrumentation** ("The cost of the runtime
//!    checks is limited by a selective instrumentation, avoiding
//!    unnecessary checks", paper §5): checks inserted per benchmark
//!    under both policies.
//! 2. **Matching refinement on/off**: how many PDF+ candidates the
//!    balanced-arms sequence refinement eliminates.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin ablation_selective [A|B|C]`

use parcoach_bench::compile_baseline;
use parcoach_core::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach_workloads::{figure1_suite, WorkloadClass};

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("A") => WorkloadClass::A,
        Some("C") => WorkloadClass::C,
        _ => WorkloadClass::B,
    };

    println!("E5a — selective vs. full instrumentation (class {class:?})");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>10}",
        "bench", "colls", "selective", "full", "saved"
    );
    for w in figure1_suite(class) {
        let (_u, module) = compile_baseline(w.name, &w.source);
        let colls: usize = module
            .funcs
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .flat_map(|b| &b.instrs)
                    .filter(|i| i.collective_kind().is_some())
                    .count()
            })
            .sum();
        let report = AnalysisSession::builder().build().check_module(&module);
        let (_m1, sel) = instrument_module(&module, &report, InstrumentMode::Selective);
        let (_m2, full) = instrument_module(&module, &report, InstrumentMode::Full);
        let saved = if full.total() > 0 {
            100.0 * (1.0 - sel.total() as f64 / full.total() as f64)
        } else {
            0.0
        };
        println!(
            "{:<8} {:>7} {:>12} {:>12} {:>9.1}%",
            w.name,
            colls,
            sel.total(),
            full.total(),
            saved
        );
    }

    println!();
    println!("E5b — matching refinement: PDF+ divergence candidates vs. confirmed");
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "bench", "candidates", "confirmed", "eliminated"
    );
    for w in figure1_suite(class) {
        let (_u, module) = compile_baseline(w.name, &w.source);
        let refined = AnalysisSession::builder().build().check_module(&module);
        println!(
            "{:<8} {:>14} {:>14} {:>12}",
            w.name,
            refined.pdf_candidates,
            refined.pdf_confirmed,
            refined.pdf_candidates.saturating_sub(refined.pdf_confirmed)
        );
    }
}
