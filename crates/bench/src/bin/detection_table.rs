//! E3 (extension) — detection capability over the error catalogue:
//! for every case, the static verdict, the dynamic outcome of an
//! *instrumented* run, and who intercepted the failure.
//!
//! Usage: `cargo run --release -p parcoach-bench --bin detection_table
//! [filter[,filter…]]` — optional comma-separated id substrings select
//! a catalogue slice (e.g. `p2p,subcomm,multiple` for the E6 p2p /
//! sub-communicator slice).

use parcoach_interp::{check_and_run, RunConfig};
use parcoach_workloads::{error_catalogue, ExpectDynamic, ExpectStatic};

fn main() {
    let filters: Vec<String> = std::env::args()
        .nth(1)
        .map(|arg| arg.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_default();
    let selected = |id: &str| filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()));
    println!(
        "{:<28} {:<26} {:<10} {:<14} {:<10} ok?",
        "case", "static verdict", "expected", "dynamic", "by-check"
    );
    let mut all_ok = true;
    let mut any = false;
    for case in error_catalogue() {
        if !selected(case.id) {
            continue;
        }
        any = true;
        let cfg = RunConfig::fast_fail(2, 4);
        let (report, run) = match check_and_run(case.id, &case.source, cfg, true) {
            Ok(x) => x,
            Err(e) => {
                println!("{:<28} COMPILE ERROR: {e}", case.id);
                all_ok = false;
                continue;
            }
        };
        let static_verdict = if report.is_clean() {
            "clean".to_string()
        } else {
            let mut kinds: Vec<&str> = report.warnings.iter().map(|w| w.kind.code()).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds.join(",")
        };
        let dynamic = if run.is_clean() { "clean" } else { "fails" };
        let by_check = if run.detected_by_check() { "yes" } else { "-" };

        let static_ok = match case.expect_static {
            ExpectStatic::Clean => report.is_clean(),
            ExpectStatic::Warns(code) => report.warnings.iter().any(|w| w.kind.code() == code),
        };
        let dynamic_ok = match case.expect_dynamic {
            ExpectDynamic::Clean => run.is_clean(),
            ExpectDynamic::CaughtByCheck => !run.is_clean() && run.detected_by_check(),
            ExpectDynamic::CaughtBySubstrate => !run.is_clean(),
            ExpectDynamic::Fails => !run.is_clean(),
            ExpectDynamic::MayFail => true,
        };
        let ok = static_ok && dynamic_ok;
        all_ok &= ok;
        let expected = match case.expect_dynamic {
            ExpectDynamic::Clean => "clean",
            ExpectDynamic::CaughtByCheck => "check",
            ExpectDynamic::CaughtBySubstrate => "substrate",
            ExpectDynamic::Fails => "fails",
            ExpectDynamic::MayFail => "may-fail",
        };
        println!(
            "{:<28} {:<26} {:<10} {:<14} {:<10} {}",
            case.id,
            truncate(&static_verdict, 26),
            expected,
            dynamic,
            by_check,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    println!();
    if !any {
        println!("no catalogue case matches the filter(s).");
        std::process::exit(1);
    }
    if all_ok {
        println!("all catalogue cases behave as expected.");
    } else {
        println!("SOME CASES DIVERGED FROM EXPECTATION — see rows marked MISMATCH.");
        std::process::exit(1);
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
