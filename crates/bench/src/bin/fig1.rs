//! E1 — regenerate the paper's **Figure 1**: overhead of average
//! compilation time, series "Warnings" and "Warnings + verification code
//! generation", over BT-MZ, SP-MZ, LU-MZ, EPCC and HERA (class B, as in
//! the paper).
//!
//! Usage: `cargo run --release -p parcoach-bench --bin fig1 [A|B|C] [reps]`

use parcoach_bench::{figure1_rows, render_fig1};
use parcoach_workloads::{figure1_suite, WorkloadClass};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let class = match args.first().map(String::as_str) {
        Some("A") => WorkloadClass::A,
        Some("C") => WorkloadClass::C,
        _ => WorkloadClass::B, // the paper uses class B
    };
    let reps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);

    eprintln!("generating workloads (class {class:?})…");
    let suite = figure1_suite(class);
    eprintln!(
        "compiling {} benchmarks × 3 pipelines × {reps} repetitions…",
        suite.len()
    );
    let rows = figure1_rows(&suite, reps);
    print!("{}", render_fig1(&rows));
    println!();
    println!(
        "paper reference: both series stay below ~6% overhead, with code \
         generation costing more than warnings alone."
    );
    let max = rows
        .iter()
        .map(|r| r.codegen_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("measured maximum overhead: {max:.2}%");
}
