//! # parcoach-bench — harness regenerating the paper's evaluation
//!
//! The paper's evaluation is **Figure 1**: the overhead of average
//! compilation time, with two series — "Warnings" (static analysis only)
//! and "Warnings + verification code generation" (analysis +
//! instrumentation) — over BT-MZ, SP-MZ, LU-MZ, the EPCC suite and HERA.
//!
//! This crate provides the three compilation pipelines being compared
//! and the measurement helpers; the `bin/` targets print the paper-shaped
//! tables (see EXPERIMENTS.md) and the `benches/` targets give Criterion
//! confidence intervals for the same quantities.

use parcoach_core::{
    instrument_module, AnalysisSession, InstrumentMode, PhaseTimings, StaticReport,
};
use parcoach_front::parse_and_check;
use parcoach_front::CheckedUnit;
use parcoach_ir::lower::lower_program;
use parcoach_ir::Module;
use std::time::{Duration, Instant};

/// Stage 1: the plain compiler — parse, type-check, lower, verify,
/// optimize (to a fixpoint, as an `-O2`-ish middle end would) and
/// allocate registers. This is the baseline "compilation" whose time the
/// overheads are relative to; the paper's baseline is likewise a *full*
/// GCC compilation, not just a frontend (DESIGN.md §2).
pub fn compile_baseline(name: &str, src: &str) -> (CheckedUnit, Module) {
    let unit = parse_and_check(name, src).expect("workload compiles");
    let mut module = lower_program(&unit.program, &unit.signatures);
    debug_assert!(parcoach_ir::verify_module(&module).is_empty());
    parcoach_ir::opt::optimize_module(&mut module, 4);
    for f in &module.funcs {
        let _ = parcoach_ir::opt::allocate(f);
    }
    (unit, module)
}

/// Stage 2: baseline + PARCOACH static analysis (the "Warnings" series).
/// As in the GCC plugin, the analysis runs on the middle-end IR — after
/// lowering, before the back end.
pub fn compile_with_warnings(name: &str, src: &str) -> (Module, StaticReport) {
    let unit = parse_and_check(name, src).expect("workload compiles");
    let mut module = lower_program(&unit.program, &unit.signatures);
    let report = AnalysisSession::builder().build().check_module(&module);
    parcoach_ir::opt::optimize_module(&mut module, 4);
    for f in &module.funcs {
        let _ = parcoach_ir::opt::allocate(f);
    }
    (module, report)
}

/// Stage 3: baseline + analysis + instrumentation (the "Warnings +
/// verification code generation" series). The inserted checks then flow
/// through the rest of the compilation like any other code.
pub fn compile_with_codegen(name: &str, src: &str) -> (Module, StaticReport) {
    let unit = parse_and_check(name, src).expect("workload compiles");
    let module = lower_program(&unit.program, &unit.signatures);
    let report = AnalysisSession::builder().build().check_module(&module);
    let (mut instrumented, _stats) = instrument_module(&module, &report, InstrumentMode::Selective);
    parcoach_ir::opt::optimize_module(&mut instrumented, 4);
    for f in &instrumented.funcs {
        let _ = parcoach_ir::opt::allocate(f);
    }
    (instrumented, report)
}

/// Lower a workload to its analysis-input IR (parse + sema + lower,
/// no optimizer) — the module shape the analysis session sees inside
/// the compile pipelines. Used by the static-phase micro-benches.
pub fn lower_workload(w: &parcoach_workloads::Workload) -> Module {
    let unit = parse_and_check(w.name, &w.source).expect("workload compiles");
    lower_program(&unit.program, &unit.signatures)
}

/// Per-phase static-analysis breakdown over `reps` repetitions (plus
/// one warm-up): element-wise **minimum** per phase — the least
/// noise-contaminated estimate of each phase's cost — with `total`
/// likewise the fastest end-to-end run.
pub fn static_phase_breakdown(
    module: &Module,
    session: &mut AnalysisSession,
    reps: usize,
) -> PhaseTimings {
    let _ = session.check_module(module); // warm-up
    let mut best: Option<PhaseTimings> = None;
    for _ in 0..reps.max(1) {
        let _r = session.check_module(module);
        let t = *session.timings().expect("check records timings");
        best = Some(match best {
            None => t,
            Some(b) => PhaseTimings {
                contexts: b.contexts.min(t.contexts),
                facts: b.facts.min(t.facts),
                mono: b.mono.min(t.mono),
                concurrency: b.concurrency.min(t.concurrency),
                matching: b.matching.min(t.matching),
                p2p: b.p2p.min(t.p2p),
                requests: b.requests.min(t.requests),
                total: b.total.min(t.total),
            },
        });
    }
    best.unwrap_or_default()
}

/// The measurement session the ablations and CI benches share: a
/// 1-lane deterministic pool (at `jobs = 1` the per-function phase sums
/// equal wall time, and the two PDF+ configurations compare on
/// identical schedules). This is the *one* place the bench side
/// configures `AnalysisOptions` — the ad-hoc `pdf_memo: false` rebuilds
/// it replaced drifted independently.
pub fn bench_session(pdf_memo: bool) -> AnalysisSession {
    bench_session_with(pdf_memo, true)
}

/// [`bench_session`] with the context-propagation driver selectable as
/// well: `incr_fixpoint: false` measures the legacy full-re-walk round
/// loop (the E13 ablation baseline), `true` the incremental worklist.
pub fn bench_session_with(pdf_memo: bool, incr_fixpoint: bool) -> AnalysisSession {
    AnalysisSession::builder()
        .jobs(1)
        .deterministic(true)
        .seed(42)
        .pdf_memo(pdf_memo)
        .incr_fixpoint(incr_fixpoint)
        .build()
}

/// Timing statistics over repeated runs.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (robust against scheduler noise; used for the tables).
    pub median: Duration,
    /// Minimum observed.
    pub min: Duration,
}

/// Measure `f` over `reps` repetitions (plus one warm-up).
pub fn measure(reps: usize, mut f: impl FnMut()) -> Timing {
    f(); // warm-up
    let mut samples = Vec::with_capacity(reps);
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        samples.push(dt);
    }
    samples.sort_unstable();
    Timing {
        mean: total / reps as u32,
        median: samples[samples.len() / 2],
        min: samples[0],
    }
}

/// Percentage overhead of `b` relative to `a`.
pub fn overhead_pct(a: Duration, b: Duration) -> f64 {
    if a.is_zero() {
        return 0.0;
    }
    (b.as_secs_f64() / a.as_secs_f64() - 1.0) * 100.0
}

/// One row of the Figure-1 table.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Source lines.
    pub lines: usize,
    /// Baseline compile time.
    pub baseline: Duration,
    /// + warnings.
    pub warnings: Duration,
    /// + warnings + codegen.
    pub codegen: Duration,
    /// Overhead percentages.
    pub warnings_pct: f64,
    /// Overhead of the full pipeline.
    pub codegen_pct: f64,
}

/// Compile a whole suite concurrently — one pool task per workload,
/// full `compile_with_codegen` pipeline each. Results come back in
/// suite order regardless of scheduling. This is the throughput path
/// (CI gate, warm-ups); the *timed* Figure-1 samples below stay
/// sequential so the series are not measured under self-inflicted load.
pub fn compile_suite_concurrent(
    workloads: &[parcoach_workloads::Workload],
) -> Vec<(&'static str, Module, StaticReport)> {
    parcoach_pool::global().par_map(workloads, |w| {
        let (m, report) = compile_with_codegen(w.name, &w.source);
        (w.name, m, report)
    })
}

/// Compute the Figure-1 rows for a suite of workloads.
///
/// Samples of the three pipelines are *interleaved* (baseline, warnings,
/// codegen, baseline, …) so slow environmental drift (frequency scaling,
/// page-cache warm-up, noisy neighbours) hits all three series equally;
/// the reported value is the per-series median.
///
/// All workloads are warmed up concurrently first (compiling the suite
/// is embarrassingly parallel); the timed samples then run one at a
/// time.
pub fn figure1_rows(workloads: &[parcoach_workloads::Workload], reps: usize) -> Vec<Fig1Row> {
    // Warm-up all code paths and fault in every source, in parallel.
    let _ = compile_suite_concurrent(workloads);
    workloads
        .iter()
        .map(|w| {
            // Warm-up the remaining code paths of this workload.
            let _ = compile_baseline(w.name, &w.source);
            let _ = compile_with_warnings(w.name, &w.source);
            let mut base = Vec::with_capacity(reps);
            let mut warn = Vec::with_capacity(reps);
            let mut code = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                let _ = compile_baseline(w.name, &w.source);
                base.push(t0.elapsed());
                let t0 = Instant::now();
                let _ = compile_with_warnings(w.name, &w.source);
                warn.push(t0.elapsed());
                let t0 = Instant::now();
                let _ = compile_with_codegen(w.name, &w.source);
                code.push(t0.elapsed());
            }
            let median = |v: &mut Vec<Duration>| -> Duration {
                v.sort_unstable();
                v[v.len() / 2]
            };
            let (b, wn, cd) = (median(&mut base), median(&mut warn), median(&mut code));
            Fig1Row {
                name: w.name,
                lines: w.lines(),
                baseline: b,
                warnings: wn,
                codegen: cd,
                warnings_pct: overhead_pct(b, wn),
                codegen_pct: overhead_pct(b, cd),
            }
        })
        .collect()
}

/// Render Figure-1 rows as the text table printed by `bin/fig1`.
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 1 — overhead of average compilation time (PPoPP'15, Saillard et al.)\n");
    out.push_str(&format!(
        "{:<8} {:>7} {:>12} {:>12} {:>12} {:>11} {:>11}\n",
        "bench", "lines", "baseline", "warnings", "warn+code", "warn %", "code %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>7} {:>12} {:>12} {:>12} {:>10.2}% {:>10.2}%\n",
            r.name,
            r.lines,
            format!("{:.2?}", r.baseline),
            format!("{:.2?}", r.warnings),
            format!("{:.2?}", r.codegen),
            r.warnings_pct,
            r.codegen_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_workloads::{figure1_suite, WorkloadClass};

    #[test]
    fn pipelines_run_on_every_workload() {
        for w in figure1_suite(WorkloadClass::A) {
            let (_u, m) = compile_baseline(w.name, &w.source);
            assert!(m.total_blocks() > 0);
            let (_m, report) = compile_with_warnings(w.name, &w.source);
            let (_instr, report2) = compile_with_codegen(w.name, &w.source);
            assert_eq!(report.warnings.len(), report2.warnings.len());
        }
    }

    #[test]
    fn phase_breakdown_covers_the_pipeline() {
        let suite = figure1_suite(WorkloadClass::A);
        let w = suite.iter().find(|w| w.name == "EPCC").unwrap();
        let m = lower_workload(w);
        let t = static_phase_breakdown(&m, &mut bench_session(true), 3);
        assert!(t.total > Duration::ZERO);
        // The per-function phases all ran on a collective-rich workload.
        assert!(t.matching > Duration::ZERO);
        assert!(t.mono > Duration::ZERO);
        assert!(t.contexts > Duration::ZERO);
    }

    #[test]
    fn overhead_math() {
        let a = Duration::from_millis(100);
        let b = Duration::from_millis(106);
        assert!((overhead_pct(a, b) - 6.0).abs() < 0.01);
        assert_eq!(overhead_pct(Duration::ZERO, b), 0.0);
    }

    #[test]
    fn ordering_holds_on_tiny_suite() {
        // Warnings+codegen must cost at least as much as warnings, which
        // costs at least as much as baseline (monotone pipeline), up to
        // noise — check with generous tolerance on the min times.
        let suite = figure1_suite(WorkloadClass::A);
        let w = &suite[0];
        let base = measure(5, || {
            let _ = compile_baseline(w.name, &w.source);
        });
        let code = measure(5, || {
            let _ = compile_with_codegen(w.name, &w.source);
        });
        // Analysis now fans out over the global pool while the test
        // harness itself runs tests concurrently, so leave wide noise
        // margins — this guards against gross inversions only.
        assert!(
            code.min.as_secs_f64() > base.min.as_secs_f64() * 0.5,
            "full pipeline should not be faster than baseline: {base:?} vs {code:?}"
        );
    }

    #[test]
    fn render_contains_all_names() {
        let suite = figure1_suite(WorkloadClass::A);
        let rows = figure1_rows(&suite, 2);
        let table = render_fig1(&rows);
        for w in &suite {
            assert!(table.contains(w.name), "{table}");
        }
    }
}
