//! E5c — scaling of the static analysis with program size: analysis time
//! on HERA (the largest benchmark) across classes A/B/C, plus the cost
//! of the matching refinement via its toggle.
//!
//! `cargo bench -p parcoach-bench --bench analysis_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcoach_bench::compile_baseline;
use parcoach_core::AnalysisSession;
use parcoach_workloads::{hera, WorkloadClass};
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for class in [WorkloadClass::A, WorkloadClass::B, WorkloadClass::C] {
        let w = hera::generate(class);
        let (_u, module) = compile_baseline(w.name, &w.source);
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("HERA-{class:?}-{}loc", w.lines())),
            &module,
            |b, m| {
                let mut session = AnalysisSession::builder().build();
                b.iter(|| black_box(session.check_module(m)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("analyze-no-refine", format!("HERA-{class:?}")),
            &module,
            |b, m| {
                let mut session = AnalysisSession::builder().refine_matching(false).build();
                b.iter(|| black_box(session.check_module(m)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
