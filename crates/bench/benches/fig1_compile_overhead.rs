//! Criterion version of E1 / Figure 1: compile-time cost of the three
//! pipelines (baseline / +warnings / +codegen) on the five benchmarks.
//!
//! `cargo bench -p parcoach-bench --bench fig1_compile_overhead`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcoach_bench::{compile_baseline, compile_with_codegen, compile_with_warnings};
use parcoach_workloads::{figure1_suite, WorkloadClass};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    // Class B, like the paper. Workloads generated once.
    let suite = figure1_suite(WorkloadClass::B);
    let mut group = c.benchmark_group("fig1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for w in &suite {
        group.bench_with_input(BenchmarkId::new("baseline", w.name), &w.source, |b, src| {
            b.iter(|| black_box(compile_baseline(w.name, src)))
        });
        group.bench_with_input(BenchmarkId::new("warnings", w.name), &w.source, |b, src| {
            b.iter(|| black_box(compile_with_warnings(w.name, src)))
        });
        group.bench_with_input(
            BenchmarkId::new("warnings+codegen", w.name),
            &w.source,
            |b, src| b.iter(|| black_box(compile_with_codegen(w.name, src))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
