//! E4 — execution-time overhead of the PARCOACH instrumentation ("low
//! overhead", paper abstract/§5): instrumented vs. uninstrumented runs
//! of class-A workloads on the simulated hybrid runtime.
//!
//! `cargo bench -p parcoach-bench --bench runtime_overhead`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcoach_bench::{compile_baseline, compile_with_codegen};
use parcoach_interp::{Executor, RunConfig};
use parcoach_workloads::{figure1_suite, WorkloadClass};
use std::hint::black_box;
use std::time::Duration;

fn run_cfg() -> RunConfig {
    RunConfig {
        ranks: 2,
        default_threads: 2,
        ..RunConfig::default()
    }
}

fn bench_runtime(c: &mut Criterion) {
    let suite = figure1_suite(WorkloadClass::A);
    let mut group = c.benchmark_group("runtime");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    for w in &suite {
        // Executors are built once; iterations re-run the program.
        let (_u, plain_module) = compile_baseline(w.name, &w.source);
        let (instr_module, _report) = compile_with_codegen(w.name, &w.source);
        let plain = Executor::new(plain_module, run_cfg());
        let instr = Executor::new(instr_module, run_cfg());
        group.bench_with_input(BenchmarkId::new("plain", w.name), &(), |b, ()| {
            b.iter(|| {
                let r = plain.run();
                assert!(r.is_clean(), "{}: {:?}", w.name, r.errors);
                black_box(r)
            })
        });
        group.bench_with_input(BenchmarkId::new("instrumented", w.name), &(), |b, ()| {
            b.iter(|| {
                let r = instr.run();
                assert!(r.is_clean(), "{}: {:?}", w.name, r.errors);
                black_box(r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
