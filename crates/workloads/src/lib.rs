//! # parcoach-workloads — the paper's evaluation programs, synthesized
//!
//! Generators for MiniHPC programs with the structure and scale of the
//! paper's five benchmarks (Figure 1): **BT-MZ / SP-MZ / LU-MZ** (NAS
//! Multi-Zone), the **EPCC** mixed-mode suite and **HERA** — plus the
//! error catalogue used by the detection experiments.
//!
//! See DESIGN.md §2 for why source generators are a faithful substitute
//! here: the measured quantity (compile-time overhead of analysis +
//! instrumentation) depends on CFG size/shape, OpenMP region counts and
//! MPI call-site placement, all of which the generators reproduce per
//! class.
//!
//! ```
//! use parcoach_workloads::{figure1_suite, WorkloadClass};
//! let suite = figure1_suite(WorkloadClass::A);
//! assert_eq!(suite.len(), 5);
//! assert_eq!(suite[0].name, "BT-MZ");
//! ```

pub mod builder;
pub mod catalogue;
pub mod epcc;
pub mod hera;
pub mod nas_mz;

pub use catalogue::{
    catalogue_markdown, error_catalogue, paper_ref, ErrorCase, ExpectDynamic, ExpectStatic,
};
pub use nas_mz::MzKind;

/// Problem-size class, scaling like the NPB classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Small (quick runs, runtime benches).
    A,
    /// Medium — the paper evaluates NPB-MZ "using class B".
    B,
    /// Large (stress compile-time scaling).
    C,
}

/// A generated benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as in the paper's Figure 1 axis.
    pub name: &'static str,
    /// Size class.
    pub class: WorkloadClass,
    /// MiniHPC source text.
    pub source: String,
}

impl Workload {
    /// Number of source lines (size metric for reports).
    pub fn lines(&self) -> usize {
        self.source.lines().count()
    }
}

/// The five benchmarks of Figure 1, in the paper's order.
pub fn figure1_suite(class: WorkloadClass) -> Vec<Workload> {
    vec![
        nas_mz::generate(MzKind::BT, class),
        nas_mz::generate(MzKind::SP, class),
        nas_mz::generate(MzKind::LU, class),
        epcc::generate(class),
        hera::generate(class),
    ]
}
