//! The error catalogue: one small program per error pattern the paper's
//! analysis covers, plus correct control programs (including the classic
//! static false positives the dynamic phase must clear).
//!
//! Used by the detection-capability experiment (E3) and the end-to-end
//! integration tests: each case records the *expected* static verdict
//! and dynamic outcome.

/// Expected static outcome for a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectStatic {
    /// No warnings at all.
    Clean,
    /// At least one warning, with the given code expected among them.
    Warns(&'static str),
}

/// Expected dynamic outcome (run with instrumentation, 2 ranks / 4
/// threads unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectDynamic {
    /// Completes cleanly.
    Clean,
    /// Fails, intercepted by a PARCOACH check (CC / monothread assert /
    /// concurrency counter).
    CaughtByCheck,
    /// Fails; the substrate (matcher, deadlock census, thread-level
    /// enforcement) reports it — with or without instrumentation.
    CaughtBySubstrate,
    /// Fails by either path depending on scheduling.
    Fails,
    /// Latent error: the static phase warns, but whether a run fails
    /// depends on the schedule (e.g. identical collectives under nested
    /// parallelism, or a `single` claimed by the initial thread under
    /// `MPI_THREAD_SINGLE`). Runs are accepted either way.
    MayFail,
}

/// One catalogue entry.
#[derive(Debug, Clone)]
pub struct ErrorCase {
    /// Stable id.
    pub id: &'static str,
    /// What the case exercises.
    pub description: &'static str,
    /// The program.
    pub source: String,
    /// Expected static verdict.
    pub expect_static: ExpectStatic,
    /// Expected dynamic outcome under instrumentation.
    pub expect_dynamic: ExpectDynamic,
}

/// Build the complete catalogue.
pub fn error_catalogue() -> Vec<ErrorCase> {
    vec![
        // ---- erroneous programs ----------------------------------------
        ErrorCase {
            id: "mismatch-rank-branch",
            description: "different collectives on rank-dependent branches",
            source: r#"
fn main() {
    if (rank() == 0) { MPI_Barrier(); } else { let x = MPI_Allreduce(1, SUM); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "missing-collective",
            description: "collective executed by a strict subset of ranks",
            source: r#"
fn main() {
    if (rank() == 0) { MPI_Barrier(); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "count-mismatch-loop",
            description: "rank-dependent collective count in a loop",
            source: r#"
fn main() {
    let n = 1 + rank();
    for (i in 0..n) { let x = MPI_Allreduce(i, SUM); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "early-return",
            description: "a rank returns from main before the collective",
            source: r#"
fn main() {
    if (rank() == size() - 1) { return; }
    MPI_Barrier();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "multithreaded-collective",
            description: "collective executed by the whole team",
            source: r#"
fn main() {
    parallel num_threads(4) {
        MPI_Barrier();
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("multithreaded-collective"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "collective-in-pfor",
            description: "collective inside a worksharing loop",
            source: r#"
fn main() {
    parallel num_threads(2) {
        pfor (i in 0..4) { let x = MPI_Allreduce(i, SUM); }
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("multithreaded-collective"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "nested-parallel-collective",
            description: "collective under nested parallelism (one executor per team)",
            source: r#"
fn main() {
    parallel num_threads(2) {
        parallel num_threads(2) {
            single { MPI_Barrier(); }
        }
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("nested-parallelism-collective"),
            expect_dynamic: ExpectDynamic::MayFail,
        },
        ErrorCase {
            id: "concurrent-singles-nowait",
            description: "two collective-bearing nowait singles may overlap",
            source: r#"
fn main() {
    parallel num_threads(4) {
        single nowait { MPI_Barrier(); }
        single nowait { let x = MPI_Allreduce(1, SUM); }
        barrier;
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("concurrent-collectives"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "concurrent-sections",
            description: "collectives in sibling sections",
            source: r#"
fn main() {
    parallel num_threads(2) {
        sections {
            section { MPI_Barrier(); }
            section { let x = MPI_Allreduce(1, SUM); }
        }
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("concurrent-collectives"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "self-concurrent-single",
            description: "nowait single with a collective inside a loop",
            source: r#"
fn main() {
    parallel num_threads(4) {
        for (i in 0..3) {
            single nowait { let x = MPI_Allreduce(i, SUM); }
        }
        barrier;
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("self-concurrent-region"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "barrier-divergence",
            description: "thread barrier on one branch only",
            source: r#"
fn main() {
    parallel num_threads(2) {
        if (thread_num() == 0) { barrier; }
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("barrier-divergence"),
            expect_dynamic: ExpectDynamic::CaughtBySubstrate,
        },
        ErrorCase {
            id: "insufficient-thread-level",
            description: "MPI_Init without thread support but hybrid collectives",
            source: r#"
fn main() {
    MPI_Init();
    parallel num_threads(2) {
        single { MPI_Barrier(); }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("insufficient-thread-level"),
            expect_dynamic: ExpectDynamic::MayFail,
        },
        ErrorCase {
            id: "divergent-call",
            description: "collective-bearing function called on one branch",
            source: r#"
fn exchange() { MPI_Barrier(); }
fn main() {
    if (rank() % 2 == 0) { exchange(); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "multithreaded-call",
            description: "collective-bearing function called by the whole team",
            source: r#"
fn exchange() { let x = MPI_Allreduce(1, SUM); }
fn main() {
    parallel num_threads(4) {
        exchange();
    }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("multithreaded-call"),
            expect_dynamic: ExpectDynamic::Fails,
        },
        // ---- point-to-point and sub-communicator errors ------------------
        ErrorCase {
            id: "p2p-recv-before-send",
            description: "head-to-head recv-then-send deadlock on every rank \
                          (the wait-for-graph detector names the cycle)",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let v = MPI_Recv(peer, 7);
    MPI_Send(rank(), peer, 7);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("mismatched-order"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "p2p-tag-mismatch-subcomm",
            description: "send tag 1 vs recv tag 2 on a duplicated communicator",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_dup(MPI_COMM_WORLD);
    let peer = size() - 1 - rank();
    MPI_Send(1.5, peer, 1, c);
    let v = MPI_Recv(peer, 2, c);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("unmatched-p2p"),
            expect_dynamic: ExpectDynamic::CaughtBySubstrate,
        },
        ErrorCase {
            id: "p2p-unreceived-send",
            description: "a send no receive ever consumes (latent in a buffered \
                          model; the pre-finalize p2p census catches it)",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    MPI_Send(42, peer, 5);
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("unmatched-p2p"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "subcomm-collective-divergence",
            description: "collective on a split communicator executed by a \
                          subset of its members",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
    if (rank() == 0) { MPI_Barrier(c); }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::CaughtBySubstrate,
        },
        ErrorCase {
            id: "p2p-insufficient-thread-level",
            description: "whole-team sends under SERIALIZED (needs MULTIPLE)",
            source: r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    let peer = size() - 1 - rank();
    parallel num_threads(2) {
        MPI_Send(thread_num(), peer, 3);
    }
    let a = MPI_Recv(peer, 3);
    let b = MPI_Recv(peer, 3);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("insufficient-thread-level"),
            expect_dynamic: ExpectDynamic::MayFail,
        },
        // ---- non-blocking / wildcard / request errors --------------------
        ErrorCase {
            id: "request-leak-isend",
            description: "MPI_Isend whose request is never waited and whose \
                          message no receive consumes (latent; the request \
                          pass and the p2p census both catch it)",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let s = MPI_Isend(42, peer, 5);
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("unwaited-request"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "request-wait-never-posted-send",
            description: "wait on an irecv whose matching send is never \
                          posted by any rank",
            source: r#"
fn main() {
    MPI_Init();
    if (rank() == 0) {
        let r = MPI_Irecv(1, 9);
        let v = MPI_Wait(r);
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("unmatched-p2p"),
            expect_dynamic: ExpectDynamic::CaughtBySubstrate,
        },
        ErrorCase {
            id: "nonblocking-wait-cycle",
            description: "head-to-head wait cycle: every rank waits on its \
                          irecv before sending (the wait-for-graph detector \
                          terminates the run instead of hanging)",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let r = MPI_Irecv(peer, 7);
    let v = MPI_Wait(r);
    MPI_Send(rank(), peer, 7);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("mismatched-order"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "nonblocking-waitall-cycle-two-comms",
            description: "waitall cycle across two communicators: both \
                          pending receives precede every matching send",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_dup(MPI_COMM_WORLD);
    let peer = size() - 1 - rank();
    let r1 = MPI_Irecv(peer, 1);
    let r2 = MPI_Irecv(peer, 2, c);
    MPI_Waitall(r1, r2);
    MPI_Send(1.0, peer, 1);
    MPI_Send(2.0, peer, 2, c);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("mismatched-order"),
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "wildcard-pinned-deadlock",
            description: "receive pinned to the wrong source (classic \
                          off-by-one): correct under MPI_ANY_SOURCE (see \
                          ok-wildcard-anysource), a wait-for self-loop when \
                          pinned",
            source: r#"
fn main() {
    MPI_Init();
    if (rank() == 0) {
        let r = MPI_Irecv(0, 6);
        let v = MPI_Wait(r);
    } else {
        MPI_Send(1.5, 0, 6);
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::CaughtByCheck,
        },
        ErrorCase {
            id: "nonblocking-insufficient-thread-level",
            description: "whole-team isend/wait under SERIALIZED (needs \
                          MULTIPLE)",
            source: r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    let peer = size() - 1 - rank();
    parallel num_threads(2) {
        let s = MPI_Isend(thread_num(), peer, 3);
        let v = MPI_Wait(s);
    }
    let a = MPI_Recv(peer, 3);
    let b = MPI_Recv(peer, 3);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("insufficient-thread-level"),
            expect_dynamic: ExpectDynamic::MayFail,
        },
        // ---- correct programs (controls) --------------------------------
        ErrorCase {
            id: "ok-sequential",
            description: "collectives outside any parallel region",
            source: r#"
fn main() {
    MPI_Init();
    let s = MPI_Allreduce(rank(), SUM);
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-single",
            description: "collective correctly wrapped in single",
            source: r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    parallel num_threads(4) {
        single { MPI_Barrier(); }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-master-funneled",
            description: "collective in master under FUNNELED",
            source: r#"
fn main() {
    MPI_Init_thread(FUNNELED);
    parallel num_threads(4) {
        master { let x = MPI_Allreduce(1, SUM); }
        barrier;
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-ordered-singles",
            description: "two singles separated by the implicit barrier",
            source: r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    parallel num_threads(4) {
        single { MPI_Barrier(); }
        single { let x = MPI_Allreduce(1, SUM); }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "fp-uniform-conditional",
            description: "conditional collective with a rank-uniform condition \
                          (static false positive, dynamically clean)",
            source: r#"
fn main() {
    let flag = size() > 0;
    if (flag) { MPI_Barrier(); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "fp-uniform-loop",
            description: "collective in a loop with uniform bounds \
                          (static false positive, dynamically clean)",
            source: r#"
fn main() {
    for (i in 0..4) { let x = MPI_Allreduce(i, SUM); }
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-p2p-pingpong",
            description: "correctly ordered blocking ping-pong",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    if (rank() == 0) {
        MPI_Send(1.0, peer, 4);
        let v = MPI_Recv(peer, 4);
    } else {
        let v = MPI_Recv(peer, 4);
        MPI_Send(2.0, peer, 4);
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-multiple-threaded-pingpong",
            description: "MPI_THREAD_MULTIPLE-correct: one thread sends while a \
                          sibling thread receives (MPIxThreads pattern)",
            source: r#"
fn main() {
    MPI_Init_thread(MULTIPLE);
    let peer = size() - 1 - rank();
    parallel num_threads(2) {
        sections {
            section { MPI_Send(3.5, peer, 10); }
            section { let v = MPI_Recv(peer, 10); }
        }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-multiple-concurrent-subcomm-collectives",
            description: "MPI_THREAD_MULTIPLE-correct: concurrent collectives on \
                          unrelated communicators from sibling threads",
            source: r#"
fn main() {
    MPI_Init_thread(MULTIPLE);
    let c = MPI_Comm_dup(MPI_COMM_WORLD);
    parallel num_threads(2) {
        sections {
            section { MPI_Barrier(); }
            section { MPI_Barrier(c); }
        }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-subcomm-allreduce",
            description: "unconditional collective on a parity-split communicator",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank());
    let s = MPI_Allreduce(rank() + 1, SUM, c);
    print(s);
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-nonblocking-pingpong",
            description: "post the irecv, send, then wait — the correct \
                          non-blocking exchange (deferred completion keeps \
                          the order pass quiet)",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let r = MPI_Irecv(peer, 4);
    MPI_Send(rank() + 1, peer, 4);
    let v = MPI_Wait(r);
    print(v);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-wildcard-anysource",
            description: "wildcard receive: the collector accepts the token \
                          from any source (the correct version of \
                          wildcard-pinned-deadlock)",
            source: r#"
fn main() {
    MPI_Init();
    if (rank() == 0) {
        let r = MPI_Irecv(MPI_ANY_SOURCE, 6);
        let v = MPI_Wait(r);
        print(v);
    } else {
        MPI_Send(1.5, 0, 6);
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-nonblocking-waitall-exchange",
            description: "two-tag exchange completed by one waitall over all \
                          four requests",
            source: r#"
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let r1 = MPI_Irecv(peer, 1);
    let r2 = MPI_Irecv(peer, 2);
    let s1 = MPI_Isend(10 + rank(), peer, 1);
    let s2 = MPI_Isend(20 + rank(), peer, 2);
    MPI_Waitall(r1, r2, s1, s2);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-wildcard-subcomm",
            description: "fully wildcarded receive on a duplicated \
                          communicator: its matching space is separate, so \
                          world traffic cannot be stolen",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_dup(MPI_COMM_WORLD);
    let peer = size() - 1 - rank();
    let r = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG, c);
    let s = MPI_Isend(rank() + 1, peer, 5, c);
    MPI_Barrier();
    MPI_Waitall(r, s);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-halo-exchange-subcomm",
            description: "HERA-style comm-split halo exchange: isend/irecv \
                          per step completed by MPI_Waitall on the \
                          sub-communicator, then a subcomm allreduce \
                          (request tables + per-comm matching under load)",
            source: r#"
fn main() {
    MPI_Init();
    let c = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
    let peer = size() - 1 - rank();
    let acc = 0.0;
    for (step in 0..3) {
        let r = MPI_Irecv(peer, 7, c);
        let s = MPI_Isend(float_of(step) + 0.5, peer, 7, c);
        MPI_Waitall(r, s);
    }
    let total = MPI_Allreduce(acc + 1.0, SUM, c);
    print(total);
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "ok-balanced-branches",
            description: "same collective on both branches (refinement removes \
                          the PDF+ candidate)",
            source: r#"
fn main() {
    if (rank() % 2 == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        // ---- fuzz-derived cases (minimized differential reproducers) ----
        // Promoted from the E11 differential-fuzzing campaigns: each is a
        // delta-debugged counterexample whose static/dynamic verdicts
        // disagreed (or used to, before the entry-reachability fix).
        ErrorCase {
            id: "fuzz-dead-helper-wait-cycle",
            description: "uncalled helper with a recv-before-send cycle: \
                          before entry-reachability filtering the static \
                          phase warned on dead code (fuzz FP reproducer)",
            source: r#"
fn dead() {
    let peer = size() - 1 - rank();
    let v = MPI_Recv(peer, 1);
    MPI_Send(v, peer, 1);
}
fn main() {
    MPI_Init();
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "fuzz-dead-helper-send-leak",
            description: "uncalled helper whose send never completes: dead \
                          code must not produce unmatched-p2p warnings \
                          (fuzz FP reproducer)",
            source: r#"
fn dead() {
    MPI_Send(1.5, 0, 4);
}
fn main() {
    MPI_Init();
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "fuzz-dead-helper-request-leak",
            description: "uncalled helper leaking an isend request: dead \
                          code must not trip the request life-cycle pass \
                          (fuzz FP reproducer)",
            source: r#"
fn dead() {
    let peer = size() - 1 - rank();
    let r = MPI_Isend(2.5, peer, 9);
}
fn main() {
    MPI_Init();
    MPI_Barrier();
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Clean,
        },
        ErrorCase {
            id: "fuzz-masked-recv-balance",
            description: "the soundness half of reachability filtering: an \
                          uncalled helper's send must not balance the \
                          reachable receive's (comm, tag) key, which would \
                          mask the deadlock statically",
            source: r#"
fn dead() {
    let peer = size() - 1 - rank();
    MPI_Send(1.0, peer, 5);
}
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let v = MPI_Recv(peer, 5);
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("unmatched-p2p"),
            expect_dynamic: ExpectDynamic::CaughtBySubstrate,
        },
        ErrorCase {
            id: "fuzz-pinned-collector-single",
            description: "pinned-wrong-source collector inside a single \
                          region: the SPMD (comm, tag) abstraction cannot \
                          align peer ranks statically, and the stall \
                          surfaces as thread-barrier divergence (fuzz FN \
                          blind-spot reproducer)",
            source: r#"
fn collect() {
    if (rank() == 0) {
        let r = MPI_Irecv(0, 2);
        let v = MPI_Wait(r);
    } else {
        MPI_Send(1.5, 0, 2);
    }
}
fn main() {
    MPI_Init_thread(MULTIPLE);
    parallel num_threads(2) {
        single { collect(); }
    }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Clean,
            expect_dynamic: ExpectDynamic::Fails,
        },
        ErrorCase {
            id: "fuzz-uniform-guard-fp",
            description: "the fuzzer's minimized form of the uniform-guard \
                          false positive: a size()-uniform inline condition \
                          around a collective (cf. fp-uniform-conditional)",
            source: r#"
fn main() {
    MPI_Init_thread(FUNNELED);
    if (size() > 0) { MPI_Barrier(); }
    MPI_Finalize();
}
"#
            .into(),
            expect_static: ExpectStatic::Warns("collective-mismatch"),
            expect_dynamic: ExpectDynamic::Clean,
        },
    ]
}

/// The paper/related-work anchor of a catalogue case. Kept as a match
/// (not a struct field) so the mapping is exhaustively tested against
/// the case list without widening every literal.
pub fn paper_ref(id: &str) -> &'static str {
    match id {
        "mismatch-rank-branch"
        | "missing-collective"
        | "count-mismatch-loop"
        | "early-return"
        | "divergent-call" => "§2 property 3 / Algorithm 1",
        "multithreaded-collective"
        | "collective-in-pfor"
        | "nested-parallel-collective"
        | "multithreaded-call" => "§2 property 1 (monothread contexts)",
        "concurrent-singles-nowait" | "concurrent-sections" | "self-concurrent-single" => {
            "§2 property 2 (sequential order)"
        }
        "barrier-divergence" => "§2 (parallelism-word divergence)",
        "insufficient-thread-level" => "§1 / MPI-2 §12.4 (thread levels)",
        "p2p-recv-before-send" | "p2p-tag-mismatch-subcomm" | "p2p-unreceived-send" => {
            "extension: p2p matching (Liao et al.)"
        }
        "subcomm-collective-divergence" => "extension: per-communicator Algorithm 1",
        "p2p-insufficient-thread-level" => "extension: p2p thread levels (MPIxThreads)",
        "ok-sequential" | "ok-single" | "ok-master-funneled" | "ok-ordered-singles" => {
            "§2 (accepted language L)"
        }
        "fp-uniform-conditional" | "fp-uniform-loop" => "§3 (dynamic check clears static FP)",
        "ok-p2p-pingpong" => "extension: p2p matching (correct control)",
        "ok-multiple-threaded-pingpong" | "ok-multiple-concurrent-subcomm-collectives" => {
            "extension: MPI_THREAD_MULTIPLE-correct (MPIxThreads)"
        }
        "ok-subcomm-allreduce" => "extension: per-communicator matching (correct control)",
        "ok-balanced-branches" => "extension: balanced-arms refinement",
        "request-leak-isend" | "request-wait-never-posted-send" => {
            "extension: request life-cycle (leaked request / never-produced message)"
        }
        "nonblocking-wait-cycle" | "nonblocking-waitall-cycle-two-comms" => {
            "extension: deferred completion + wait-for graph"
        }
        "wildcard-pinned-deadlock" | "ok-wildcard-anysource" => {
            "extension: wildcard receives (arXiv:2508.18667 §asynchronous matching)"
        }
        "nonblocking-insufficient-thread-level" => {
            "extension: non-blocking thread levels (MPIxThreads)"
        }
        "ok-nonblocking-pingpong" | "ok-nonblocking-waitall-exchange" => {
            "extension: non-blocking p2p (correct controls)"
        }
        "ok-wildcard-subcomm" => "extension: wildcard matching per communicator",
        "ok-halo-exchange-subcomm" => {
            "extension: non-blocking halo exchange on a sub-communicator (correct control)"
        }
        "fuzz-dead-helper-wait-cycle"
        | "fuzz-dead-helper-send-leak"
        | "fuzz-dead-helper-request-leak"
        | "fuzz-masked-recv-balance" => "E11: entry-reachability fix (fuzz-minimized)",
        "fuzz-pinned-collector-single" => {
            "E11: pinned-source blind spot — §3 hybrid rationale (fuzz-minimized)"
        }
        "fuzz-uniform-guard-fp" => "§3 (dynamic check clears static FP) — fuzz-minimized",
        _ => "unmapped",
    }
}

/// The case's category, derived from its expectations.
fn case_kind(c: &ErrorCase) -> &'static str {
    match (c.expect_static, c.expect_dynamic) {
        (ExpectStatic::Clean, ExpectDynamic::Clean) => "correct (control)",
        (ExpectStatic::Warns(_), ExpectDynamic::Clean) => "static false positive",
        _ => "error",
    }
}

fn dynamic_text(e: ExpectDynamic) -> &'static str {
    match e {
        ExpectDynamic::Clean => "runs clean",
        ExpectDynamic::CaughtByCheck => "caught by a PARCOACH check",
        ExpectDynamic::CaughtBySubstrate => "caught by the substrate",
        ExpectDynamic::Fails => "fails (check or substrate)",
        ExpectDynamic::MayFail => "schedule-dependent (may fail)",
    }
}

/// Render the canonical catalogue reference table (the generated block
/// of `CATALOGUE.md`). A test compares the checked-in file against this
/// output, so the document cannot drift from `error_catalogue()`.
pub fn catalogue_markdown() -> String {
    let mut out = String::new();
    out.push_str("| id | kind | paper anchor | expected static | expected dynamic |\n");
    out.push_str("|---|---|---|---|---|\n");
    for c in error_catalogue() {
        let stat = match c.expect_static {
            ExpectStatic::Clean => "clean".to_string(),
            ExpectStatic::Warns(code) => format!("warns `{code}`"),
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            c.id,
            case_kind(&c),
            paper_ref(c.id),
            stat,
            dynamic_text(c.expect_dynamic),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_well_formed() {
        let cases = error_catalogue();
        assert!(cases.len() >= 44);
        let mut ids: Vec<_> = cases.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cases.len(), "duplicate ids");
        for c in &cases {
            assert!(!c.source.trim().is_empty());
            assert!(c.source.contains("fn main()"), "{}", c.id);
        }
    }

    #[test]
    fn every_case_has_a_paper_anchor() {
        for c in error_catalogue() {
            assert_ne!(
                paper_ref(c.id),
                "unmapped",
                "case `{}` lacks an anchor",
                c.id
            );
        }
    }

    #[test]
    fn markdown_covers_every_case() {
        let md = catalogue_markdown();
        for c in error_catalogue() {
            assert!(md.contains(&format!("`{}`", c.id)), "{} missing", c.id);
        }
    }

    #[test]
    fn has_both_polarity_controls() {
        let cases = error_catalogue();
        assert!(cases
            .iter()
            .any(|c| c.expect_static == ExpectStatic::Clean
                && c.expect_dynamic == ExpectDynamic::Clean));
        assert!(
            cases
                .iter()
                .any(|c| matches!(c.expect_static, ExpectStatic::Warns(_))
                    && c.expect_dynamic == ExpectDynamic::Clean),
            "must include static-false-positive controls"
        );
    }
}
