//! Synthetic reproductions of the NAS Parallel Benchmarks Multi-Zone
//! (NPB-MZ v3.2) programs **BT-MZ**, **SP-MZ** and **LU-MZ** — the three
//! left-most bars of the paper's Figure 1.
//!
//! The real codes partition a 3-D mesh into zones, assign zones to MPI
//! ranks, exchange zone boundary values (`exch_qbc`) between time steps
//! and solve within zones using OpenMP. What matters for the paper's
//! *compile-time* experiment is the CFG shape and scale: number of
//! functions, loop nests, OpenMP regions and MPI call sites. The
//! generators reproduce those (per class A/B/C), with the same hybrid
//! skeleton: sequential MPI phase per time step + OpenMP solver phase.
//!
//! All three generated programs are *correct* hybrid programs: the MPI
//! collectives sit in monothreaded contexts and every rank executes the
//! same collective sequence.

use crate::builder::SourceBuilder;
use crate::{Workload, WorkloadClass};

/// Which multi-zone benchmark to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MzKind {
    /// Block-tridiagonal solver.
    BT,
    /// Scalar-pentadiagonal solver.
    SP,
    /// Lower-upper Gauss-Seidel solver.
    LU,
}

impl MzKind {
    /// Benchmark name (paper's axis label).
    pub fn name(self) -> &'static str {
        match self {
            MzKind::BT => "BT-MZ",
            MzKind::SP => "SP-MZ",
            MzKind::LU => "LU-MZ",
        }
    }
}

struct MzParams {
    /// Zones per rank (outer solver loop trip count).
    zones: usize,
    /// Grid points per zone (pfor extents).
    points: usize,
    /// Time steps.
    steps: usize,
    /// Directional sweep functions per solver (code-size driver).
    sweeps_per_solver: usize,
    /// Statements per sweep body (code-size driver).
    stmts_per_sweep: usize,
}

fn params(kind: MzKind, class: WorkloadClass) -> MzParams {
    // Scale roughly like the NPB classes: each class step grows the grid
    // and the generated code size. BT has the largest solver code, LU
    // the deepest sweeps, SP sits in between — mirroring the real
    // relative source sizes.
    let (zones, points, steps) = match class {
        WorkloadClass::A => (4, 32, 4),
        WorkloadClass::B => (8, 64, 6),
        WorkloadClass::C => (16, 128, 8),
    };
    let (sweeps, stmts) = match (kind, class) {
        (MzKind::BT, WorkloadClass::A) => (6, 12),
        (MzKind::BT, WorkloadClass::B) => (9, 18),
        (MzKind::BT, WorkloadClass::C) => (12, 26),
        (MzKind::SP, WorkloadClass::A) => (5, 10),
        (MzKind::SP, WorkloadClass::B) => (7, 15),
        (MzKind::SP, WorkloadClass::C) => (10, 22),
        (MzKind::LU, WorkloadClass::A) => (4, 14),
        (MzKind::LU, WorkloadClass::B) => (6, 20),
        (MzKind::LU, WorkloadClass::C) => (8, 28),
    };
    MzParams {
        zones,
        points,
        steps,
        sweeps_per_solver: sweeps,
        stmts_per_sweep: stmts,
    }
}

/// Generate one NAS-MZ-like workload.
pub fn generate(kind: MzKind, class: WorkloadClass) -> Workload {
    let p = params(kind, class);
    let mut b = SourceBuilder::new();

    // --- per-direction sweep kernels (the bulk of the solver code) -----
    let directions = ["x", "y", "z"];
    for dir in directions {
        for s in 0..p.sweeps_per_solver {
            sweep_fn(&mut b, kind, dir, s, p.stmts_per_sweep);
        }
    }

    // --- rhs computation -------------------------------------------------
    b.block("fn compute_rhs(u: float[], rhs: float[], nx: int)", |b| {
        b.block("parallel", |b| {
            b.block("pfor (i in 0..nx)", |b| {
                b.line("rhs[i] = u[i] * 0.95 + 0.05;");
            });
            b.block("pfor nowait (i in 0..nx)", |b| {
                b.line("let sq = u[i] * u[i];");
                b.line("rhs[i] = rhs[i] + sq * 0.001;");
            });
            b.line("barrier;");
        });
    });

    // --- boundary exchange (the MPI phase, sequential context) ----------
    b.block("fn exch_qbc(u: float[], nx: int, step: int)", |b| {
        b.line("let next = (rank() + 1) % size();");
        b.line("let prev = (rank() + size() - 1) % size();");
        b.line("MPI_Send(u[nx - 2], next, 10 + step % 4);");
        b.line("let west = MPI_Recv(prev, 10 + step % 4);");
        b.line("MPI_Send(u[1], prev, 20 + step % 4);");
        b.line("let east = MPI_Recv(next, 20 + step % 4);");
        b.line("u[0] = west;");
        b.line("u[nx - 1] = east;");
    });

    // --- residual + verification ----------------------------------------
    b.block("fn residual(rhs: float[], nx: int) -> float", |b| {
        b.line("let acc = 0.0;");
        b.block("for (i in 0..nx)", |b| {
            b.line("acc = acc + abs(rhs[i]);");
        });
        b.line("return MPI_Allreduce(acc, SUM) / float_of(size() * nx);");
    });
    b.block("fn verify(res: float, target: float)", |b| {
        b.line("let worst = MPI_Allreduce(abs(res - target), MAX);");
        b.line("let ok = MPI_Bcast(worst, 0);");
        b.block("if (rank() == 0)", |b| {
            b.line("print(ok);");
        });
    });

    // --- solver driver per zone ------------------------------------------
    b.block("fn solve_zone(u: float[], rhs: float[], nx: int)", |b| {
        b.line("compute_rhs(u, rhs, nx);");
        for dir in directions {
            for s in 0..p.sweeps_per_solver {
                b.line(format!(
                    "{}_sweep_{dir}_{s}(u, rhs, nx);",
                    solver_prefix(kind)
                ));
            }
        }
        if kind == MzKind::LU {
            // LU's SSOR: extra forward/backward passes with barriers.
            b.block("parallel", |b| {
                b.block("pfor (i in 1..nx - 1)", |b| {
                    b.line("u[i] = u[i] + rhs[i] * 0.1;");
                });
                b.line("barrier;");
                b.block("pfor (i in 1..nx - 1)", |b| {
                    b.line("u[i] = u[i] + rhs[i] * 0.05;");
                });
            });
        } else {
            b.block("parallel", |b| {
                b.block("pfor (i in 0..nx)", |b| {
                    b.line("u[i] = u[i] + rhs[i] * 0.2;");
                });
            });
        }
    });

    // --- main -------------------------------------------------------------
    b.block("fn main()", |b| {
        b.line("MPI_Init_thread(FUNNELED);");
        b.line(format!("let nx = {};", p.points));
        b.line(format!("let zones = {};", p.zones));
        b.line("let u = array(nx, 1.0);");
        b.line("let rhs = array(nx, 0.0);");
        b.line("let res = 0.0;");
        b.block(format!("for (step in 0..{})", p.steps), |b| {
            b.line("exch_qbc(u, nx, step);");
            b.block("for (z in 0..zones)", |b| {
                b.line("solve_zone(u, rhs, nx);");
            });
            b.block("if (step % 2 == 0)", |b| {
                b.line("res = residual(rhs, nx);");
            });
            b.block("else", |b| {
                b.line("res = residual(rhs, nx);");
            });
        });
        b.line("verify(res, 0.5);");
        b.line("MPI_Finalize();");
    });

    Workload {
        name: kind.name(),
        class,
        source: b.finish(),
    }
}

fn solver_prefix(kind: MzKind) -> &'static str {
    match kind {
        MzKind::BT => "bt",
        MzKind::SP => "sp",
        MzKind::LU => "lu",
    }
}

/// One directional sweep kernel.
fn sweep_fn(b: &mut SourceBuilder, kind: MzKind, dir: &str, s: usize, stmts: usize) {
    b.block(
        format!(
            "fn {}_sweep_{dir}_{s}(u: float[], rhs: float[], nx: int)",
            solver_prefix(kind)
        ),
        |b| {
            b.line("let c1 = 1.4;");
            b.line("let c2 = 0.4;");
            b.block("parallel", |b| {
                b.block("pfor (i in 1..nx - 1)", |b| {
                    b.line("let um = u[i - 1];");
                    b.line("let uc = u[i];");
                    b.line("let up = u[i + 1];");
                    b.line("let acc = 0.0;");
                    for k in 0..stmts {
                        match k % 4 {
                            0 => b.line(format!("let t{k} = um * c1 + up * c2;")),
                            1 => b.line(format!("let t{k} = uc * {}.25 + t{};", k % 3, k - 1)),
                            2 => b.line(format!("let t{k} = t{} * 0.5 + acc;", k - 1)),
                            _ => b.line(format!("let t{k} = sqrt(abs(t{})) + acc;", k - 1)),
                        };
                        if k % 4 == 2 {
                            b.line(format!("acc = acc + t{k};"));
                        }
                    }
                    b.line("rhs[i] = rhs[i] * 0.9 + acc * 0.1;");
                });
                if matches!(kind, MzKind::LU) {
                    // LU synchronizes between wavefronts.
                    b.line("barrier;");
                    b.block("master", |b| {
                        b.line("let tick = 1;");
                    });
                }
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_nonempty() {
        for kind in [MzKind::BT, MzKind::SP, MzKind::LU] {
            for class in [WorkloadClass::A, WorkloadClass::B, WorkloadClass::C] {
                let w = generate(kind, class);
                assert!(w.source.len() > 1000, "{} {class:?} too small", w.name);
            }
        }
    }

    #[test]
    fn classes_grow() {
        let a = generate(MzKind::BT, WorkloadClass::A).source.len();
        let b = generate(MzKind::BT, WorkloadClass::B).source.len();
        let c = generate(MzKind::BT, WorkloadClass::C).source.len();
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn bt_is_biggest_solver() {
        let bt = generate(MzKind::BT, WorkloadClass::B).source.len();
        let sp = generate(MzKind::SP, WorkloadClass::B).source.len();
        assert!(bt > sp, "BT {bt} vs SP {sp}");
    }
}
