//! Synthetic reproduction of **HERA** — "a large multi-physics 2D/3D AMR
//! hydrocode platform" (Jourdren 2003), the fifth bar of Figure 1.
//!
//! HERA is by far the largest code in the paper's evaluation: a C++
//! platform with many physics modules sharing an adaptive-mesh-refinement
//! driver. For the compile-time experiment the relevant characteristics
//! are: a *deep and wide call tree* (hundreds of functions), *mixed*
//! MPI/OpenMP placement (per-module parallel loops + a sequential AMR
//! driver with collectives for time-step control, refinement consensus
//! and load balancing), and *conditional* communication (I/O dumps,
//! rebalancing every N steps) — the pattern that triggers PARCOACH's
//! Algorithm 1 and makes selective instrumentation work hardest.
//!
//! The generator emits `modules × kernels` physics kernels plus an AMR
//! driver; every collective is placed correctly (warnings stem only from
//! genuinely conditional-but-uniform communication, which the dynamic
//! phase validates — exactly HERA's profile in the paper).

use crate::builder::SourceBuilder;
use crate::{Workload, WorkloadClass};

struct HeraParams {
    /// Number of physics modules (call-tree width).
    modules: usize,
    /// Kernels per module (call-tree depth × width).
    kernels_per_module: usize,
    /// Statements per kernel.
    stmts_per_kernel: usize,
    /// Mesh extent.
    extent: usize,
    /// Time steps.
    steps: usize,
    /// I/O dump period.
    dump_every: usize,
}

fn params(class: WorkloadClass) -> HeraParams {
    match class {
        WorkloadClass::A => HeraParams {
            modules: 6,
            kernels_per_module: 4,
            stmts_per_kernel: 8,
            extent: 32,
            steps: 3,
            dump_every: 2,
        },
        WorkloadClass::B => HeraParams {
            modules: 12,
            kernels_per_module: 6,
            stmts_per_kernel: 12,
            extent: 64,
            steps: 4,
            dump_every: 2,
        },
        WorkloadClass::C => HeraParams {
            modules: 20,
            kernels_per_module: 8,
            stmts_per_kernel: 16,
            extent: 96,
            steps: 6,
            dump_every: 3,
        },
    }
}

/// Generate the HERA-like workload.
pub fn generate(class: WorkloadClass) -> Workload {
    let p = params(class);
    let mut b = SourceBuilder::new();

    // --- physics kernels ---------------------------------------------------
    for m in 0..p.modules {
        for k in 0..p.kernels_per_module {
            kernel_fn(&mut b, m, k, p.stmts_per_kernel);
        }
        // Module driver calling its kernels.
        b.block(
            format!("fn module_{m}_step(field: float[], n: int) -> float"),
            |b| {
                b.line("let local_dt = 1.0;");
                for k in 0..p.kernels_per_module {
                    b.line(format!(
                        "local_dt = min(local_dt, kernel_{m}_{k}(field, n));"
                    ));
                }
                b.line("return local_dt;");
            },
        );
    }

    // --- AMR infrastructure -------------------------------------------------
    b.block("fn compute_dt(local_dt: float) -> float", |b| {
        b.line("return MPI_Allreduce(local_dt, MIN);");
    });

    b.block("fn refine_consensus(field: float[], n: int) -> int", |b| {
        b.line("let local_flag = 0;");
        b.block("for (i in 0..n)", |b| {
            b.block("if (abs(field[i]) > 10.0)", |b| {
                b.line("local_flag = 1;");
            });
        });
        b.line("let global_flag = MPI_Allreduce(local_flag, LOR);");
        b.line("return global_flag;");
    });

    b.block("fn remesh(field: float[], n: int)", |b| {
        // Refinement is data-dependent but — as in the real code — the
        // consensus makes it uniform across ranks, so the collective
        // below is conditional-but-matched (classic PARCOACH false
        // positive resolved dynamically).
        b.block("parallel", |b| {
            b.block("pfor (i in 0..n)", |b| {
                b.line("field[i] = field[i] * 0.5;");
            });
        });
        b.line("let balance = MPI_Allreduce(1, SUM);");
    });

    b.block("fn load_balance(step: int)", |b| {
        b.line("let load = float_of(step % 7) + 1.0;");
        b.line("let heaviest = MPI_Allreduce(load, MAX);");
        b.line("let lightest = MPI_Allreduce(load, MIN);");
        b.block("if (heaviest / lightest > 1.5)", |b| {
            // Migration is collective; the condition is uniform (same
            // reduction result everywhere).
            b.line("let moved = MPI_Alltoall(array(size(), step));");
        });
    });

    b.block("fn dump_io(field: float[], n: int, step: int)", |b| {
        b.line("let checksum = 0.0;");
        b.block("for (i in 0..n)", |b| {
            b.line("checksum = checksum + field[i];");
        });
        b.line("let all = MPI_Gather(checksum, 0);");
        b.block("if (rank() == 0)", |b| {
            b.line("print(step, len(all));");
        });
    });

    // --- main driver ---------------------------------------------------------
    b.block("fn main()", |b| {
        b.line("MPI_Init_thread(SERIALIZED);");
        b.line(format!("let n = {};", p.extent));
        b.line(format!("let steps = {};", p.steps));
        b.line("let field = array(n, 1.0);");
        b.line("let t = 0.0;");
        b.block("for (step in 0..steps)", |b| {
            b.line("let local_dt = 1000.0;");
            for m in 0..p.modules {
                b.line(format!(
                    "local_dt = min(local_dt, module_{m}_step(field, n));"
                ));
            }
            b.line("let dt = compute_dt(local_dt);");
            b.line("t = t + dt;");
            b.block("if (refine_consensus(field, n) == 1)", |b| {
                b.line("remesh(field, n);");
            });
            b.block(format!("if (step % {} == 0)", p.dump_every), |b| {
                b.line("dump_io(field, n, step);");
            });
            b.block("else", |b| {
                b.line("dump_io(field, n, step);");
            });
            b.line("load_balance(step);");
        });
        b.block("if (rank() == 0)", |b| {
            b.line("print(t);");
        });
        b.line("MPI_Finalize();");
    });

    Workload {
        name: "HERA",
        class,
        source: b.finish(),
    }
}

/// One physics kernel: an OpenMP loop nest over the mesh returning a
/// local time-step constraint.
fn kernel_fn(b: &mut SourceBuilder, m: usize, k: usize, stmts: usize) {
    b.block(
        format!("fn kernel_{m}_{k}(field: float[], n: int) -> float"),
        |b| {
            b.line(format!("let coeff = {}.{};", 1 + m % 3, 1 + k % 9));
            b.line("let dt = 1.0;");
            b.block("parallel", |b| {
                b.block("pfor (i in 1..n - 1)", |b| {
                    b.line("let left = field[i - 1];");
                    b.line("let mid = field[i];");
                    b.line("let right = field[i + 1];");
                    b.line("let flux = 0.0;");
                    for s in 0..stmts {
                        match s % 3 {
                            0 => b.line(format!("let v{s} = (left + right) * coeff;")),
                            1 => b.line(format!("let v{s} = mid * v{} + 0.01;", s - 1)),
                            _ => b.line(format!("flux = flux + v{} * 0.1;", s - 1)),
                        };
                    }
                    b.line("field[i] = mid + flux * 0.001;");
                });
                if k.is_multiple_of(2) {
                    b.block("single", |b| {
                        b.line("let mark = 1;");
                    });
                } else {
                    b.block("critical", |b| {
                        b.line("dt = min(dt, 0.9);");
                    });
                }
            });
            b.line("return dt;");
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_largest_workload() {
        let hera = generate(WorkloadClass::B).source.len();
        assert!(hera > 10_000, "HERA must be the big one, got {hera}");
    }

    #[test]
    fn scales_with_class() {
        let a = generate(WorkloadClass::A).source.len();
        let c = generate(WorkloadClass::C).source.len();
        assert!(c > 2 * a);
    }
}
