//! A small indentation-aware source builder shared by the workload
//! generators.

/// Builds MiniHPC source text.
pub struct SourceBuilder {
    out: String,
    indent: usize,
}

impl SourceBuilder {
    /// Empty builder.
    pub fn new() -> SourceBuilder {
        SourceBuilder {
            out: String::new(),
            indent: 0,
        }
    }

    /// Append one line at the current indentation.
    pub fn line(&mut self, text: impl AsRef<str>) -> &mut Self {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text.as_ref());
        self.out.push('\n');
        self
    }

    /// Append a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.out.push('\n');
        self
    }

    /// Open a block: `header {`.
    pub fn open(&mut self, header: impl AsRef<str>) -> &mut Self {
        self.line(format!("{} {{", header.as_ref()));
        self.indent += 1;
        self
    }

    /// Close the innermost block.
    pub fn close(&mut self) -> &mut Self {
        assert!(self.indent > 0, "unbalanced close()");
        self.indent -= 1;
        self.line("}")
    }

    /// Open, fill via the closure, close.
    pub fn block(
        &mut self,
        header: impl AsRef<str>,
        f: impl FnOnce(&mut SourceBuilder),
    ) -> &mut Self {
        self.open(header);
        f(self);
        self.close()
    }

    /// Finish and return the source.
    pub fn finish(self) -> String {
        assert_eq!(self.indent, 0, "unbalanced blocks at finish()");
        self.out
    }

    /// Current length in bytes (size metric during generation).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Is the buffer still empty?
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

impl Default for SourceBuilder {
    fn default() -> Self {
        SourceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_blocks() {
        let mut b = SourceBuilder::new();
        b.open("fn main()");
        b.line("let x = 1;");
        b.block("if (x > 0)", |b| {
            b.line("x = 2;");
        });
        b.close();
        let src = b.finish();
        assert_eq!(
            src,
            "fn main() {\n    let x = 1;\n    if (x > 0) {\n        x = 2;\n    }\n}\n"
        );
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_finish_panics() {
        let mut b = SourceBuilder::new();
        b.open("fn main()");
        let _ = b.finish();
    }
}
