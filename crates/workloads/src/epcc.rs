//! Synthetic reproduction of the **EPCC mixed-mode OpenMP/MPI
//! micro-benchmark suite v1.0** (the fourth bar of Figure 1).
//!
//! The real suite measures every MPI operation under the different
//! hybrid placement disciplines: *masteronly* (MPI outside parallel
//! regions), *funneled* (inside `master`), *serialized* (inside
//! `single`) and *multiple* (inside `critical`). That makes it the
//! stress test for the paper's analysis — MPI call sites appear in every
//! possible thread context, so both analysis and instrumentation do the
//! most work per line of code of all five benchmarks.
//!
//! The generated kernels follow the real suite's structure: pingpong /
//! haloexchange / multi-pingpong point-to-point kernels plus one
//! collective kernel per discipline, each with warm-up and measured
//! repetition loops.

use crate::builder::SourceBuilder;
use crate::{Workload, WorkloadClass};

struct EpccParams {
    /// Outer repetitions of each kernel.
    reps: usize,
    /// Message/array extent.
    extent: usize,
    /// Collective kernels per discipline (code-size driver).
    kernels_per_mode: usize,
}

fn params(class: WorkloadClass) -> EpccParams {
    match class {
        WorkloadClass::A => EpccParams {
            reps: 2,
            extent: 16,
            kernels_per_mode: 2,
        },
        WorkloadClass::B => EpccParams {
            reps: 3,
            extent: 32,
            kernels_per_mode: 4,
        },
        WorkloadClass::C => EpccParams {
            reps: 4,
            extent: 64,
            kernels_per_mode: 6,
        },
    }
}

/// The collective operations cycled through by the kernel generators.
const COLLS: [(&str, &str); 4] = [
    ("barrier", "MPI_Barrier();"),
    ("allreduce", "let red = MPI_Allreduce(x, SUM);"),
    ("bcast", "let bval = MPI_Bcast(x, 0);"),
    ("allgather", "let g = MPI_Allgather(x);"),
];

/// Generate the EPCC-like suite.
pub fn generate(class: WorkloadClass) -> Workload {
    let p = params(class);
    let mut b = SourceBuilder::new();

    // --- point-to-point kernels (masteronly style) -----------------------
    b.block("fn pingpong(reps: int, extent: int)", |b| {
        b.block("if (size() < 2)", |b| {
            b.line("return;");
        });
        b.block("for (r in 0..reps)", |b| {
            b.block("if (rank() == 0)", |b| {
                b.line("MPI_Send(r, 1, 100);");
                b.line("let echo = MPI_Recv(1, 101);");
            });
            b.block("else", |b| {
                b.block("if (rank() == 1)", |b| {
                    b.line("let ping = MPI_Recv(0, 100);");
                    b.line("MPI_Send(int_of(ping), 0, 101);");
                });
            });
        });
    });

    b.block("fn haloexchange(reps: int, extent: int)", |b| {
        b.line("let field = array(extent, 1.0);");
        b.line("let next = (rank() + 1) % size();");
        b.line("let prev = (rank() + size() - 1) % size();");
        b.block("for (r in 0..reps)", |b| {
            // Parallel compute phase between exchanges.
            b.block("parallel", |b| {
                b.block("pfor (i in 1..extent - 1)", |b| {
                    b.line("field[i] = (field[i - 1] + field[i + 1]) * 0.5;");
                });
            });
            b.line("MPI_Send(field[extent - 2], next, 200);");
            b.line("let west = MPI_Recv(prev, 200);");
            b.line("MPI_Send(field[1], prev, 201);");
            b.line("let east = MPI_Recv(next, 201);");
            b.line("field[0] = west;");
            b.line("field[extent - 1] = east;");
        });
    });

    b.block("fn multipingpong(reps: int)", |b| {
        b.block("if (size() < 2)", |b| {
            b.line("return;");
        });
        b.block("for (r in 0..reps)", |b| {
            b.line("let partner = (rank() + 1) % 2;");
            b.block("if (rank() < 2)", |b| {
                b.line("MPI_Send(r * 2, partner, 300 + r % 3);");
                b.line("let back = MPI_Recv(partner, 300 + r % 3);");
            });
        });
    });

    // --- collective kernels per discipline -------------------------------
    for k in 0..p.kernels_per_mode {
        let (cname, call) = COLLS[k % COLLS.len()];

        // masteronly: MPI between parallel regions.
        b.block(
            format!("fn masteronly_{cname}_{k}(reps: int, extent: int)"),
            |b| {
                b.line("let buf = array(extent, 0.0);");
                b.block("for (r in 0..reps)", |b| {
                    b.block("parallel", |b| {
                        b.block("pfor (i in 0..extent)", |b| {
                            b.line("buf[i] = buf[i] + float_of(i + r);");
                        });
                    });
                    b.line("let x = r;");
                    b.line(call);
                });
            },
        );

        // funneled: MPI inside `master` within the parallel region.
        b.block(
            format!("fn funneled_{cname}_{k}(reps: int, extent: int)"),
            |b| {
                b.line("let buf = array(extent, 0.0);");
                b.block("for (r in 0..reps)", |b| {
                    b.block("parallel", |b| {
                        b.block("pfor (i in 0..extent)", |b| {
                            b.line("buf[i] = buf[i] * 0.5 + 1.0;");
                        });
                        b.block("master", |b| {
                            b.line("let x = r;");
                            b.line(call);
                        });
                        b.line("barrier;");
                    });
                });
            },
        );

        // serialized: MPI inside `single`.
        b.block(
            format!("fn serialized_{cname}_{k}(reps: int, extent: int)"),
            |b| {
                b.line("let buf = array(extent, 0.0);");
                b.block("for (r in 0..reps)", |b| {
                    b.block("parallel", |b| {
                        b.block("pfor (i in 0..extent)", |b| {
                            b.line("buf[i] = buf[i] + 0.25;");
                        });
                        b.block("single", |b| {
                            b.line("let x = r;");
                            b.line(call);
                        });
                    });
                });
            },
        );
    }

    // --- main: run every kernel ------------------------------------------
    b.block("fn main()", |b| {
        b.line("MPI_Init_thread(SERIALIZED);");
        b.line(format!("let reps = {};", p.reps));
        b.line(format!("let extent = {};", p.extent));
        b.line("pingpong(reps, extent);");
        b.line("haloexchange(reps, extent);");
        b.line("multipingpong(reps);");
        for k in 0..p.kernels_per_mode {
            let (cname, _) = COLLS[k % COLLS.len()];
            b.line(format!("masteronly_{cname}_{k}(reps, extent);"));
            b.line(format!("funneled_{cname}_{k}(reps, extent);"));
            b.line(format!("serialized_{cname}_{k}(reps, extent);"));
        }
        b.line("MPI_Barrier();");
        b.block("if (rank() == 0)", |b| {
            b.line("print(0);");
        });
        b.block("else", |b| {
            b.line("print(1);");
        });
        b.line("MPI_Finalize();");
    });

    Workload {
        name: "EPCC",
        class,
        source: b.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_scales() {
        let a = generate(WorkloadClass::A).source.len();
        let b = generate(WorkloadClass::B).source.len();
        let c = generate(WorkloadClass::C).source.len();
        assert!(a > 1000);
        assert!(a < b && b < c);
    }

    #[test]
    fn contains_all_disciplines() {
        let src = generate(WorkloadClass::B).source;
        assert!(src.contains("masteronly_"));
        assert!(src.contains("funneled_"));
        assert!(src.contains("serialized_"));
        assert!(src.contains("master {"));
        assert!(src.contains("single {"));
    }
}
