//! Drift check: the generated table in `CATALOGUE.md` must match
//! `catalogue_markdown()` exactly. Run by the `offline-and-docs` CI job
//! (and `cargo test`), so the reference document cannot fall out of
//! sync with `detection_table`'s ground truth.

use parcoach_workloads::catalogue_markdown;

const BEGIN: &str = "<!-- BEGIN GENERATED CATALOGUE TABLE \
                     (do not edit; regenerate from catalogue.rs) -->";
const END: &str = "<!-- END GENERATED CATALOGUE TABLE -->";

#[test]
fn catalogue_md_matches_detection_table() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../CATALOGUE.md");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("CATALOGUE.md must exist at the repo root: {e}"));
    let start = text
        .find(BEGIN)
        .expect("CATALOGUE.md lacks the BEGIN marker")
        + BEGIN.len();
    let end = text.find(END).expect("CATALOGUE.md lacks the END marker");
    let embedded = text[start..end].trim();
    let expected = catalogue_markdown();
    assert_eq!(
        embedded,
        expected.trim(),
        "CATALOGUE.md drifted from the catalogue — replace the generated \
         block with the following:\n\n{expected}"
    );
}
