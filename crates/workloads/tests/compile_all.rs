//! Every generated workload must parse, type-check, lower, verify and
//! analyze — the compile-time benchmark (Figure 1) depends on it.

use parcoach_core::{AnalysisSession, WarningKind};
use parcoach_front::parse_and_check;
use parcoach_ir::lower::lower_program;
use parcoach_workloads::{error_catalogue, figure1_suite, nas_mz, MzKind, WorkloadClass};

#[test]
fn figure1_suite_compiles_all_classes() {
    for class in [WorkloadClass::A, WorkloadClass::B, WorkloadClass::C] {
        for w in figure1_suite(class) {
            let unit = parse_and_check(w.name, &w.source).unwrap_or_else(|(d, sm)| {
                panic!(
                    "{} {:?} does not compile:\n{}",
                    w.name,
                    class,
                    d.render(&sm)
                )
            });
            let module = lower_program(&unit.program, &unit.signatures);
            let errs = parcoach_ir::verify_module(&module);
            assert!(errs.is_empty(), "{} {:?}: {errs:?}", w.name, class);
        }
    }
}

#[test]
fn nas_workloads_have_no_context_warnings() {
    // The NAS-MZ programs place every collective correctly: phases 1/2
    // must be silent (phase 3 may warn about uniform conditionals — the
    // false positives the dynamic checks clear).
    for kind in [MzKind::BT, MzKind::SP, MzKind::LU] {
        let w = nas_mz::generate(kind, WorkloadClass::A);
        let unit = parse_and_check(w.name, &w.source).expect("compiles");
        let module = lower_program(&unit.program, &unit.signatures);
        let report = AnalysisSession::builder().build().check_module(&module);
        for warn in &report.warnings {
            assert!(
                !matches!(
                    warn.kind,
                    WarningKind::MultithreadedCollective
                        | WarningKind::NestedParallelismCollective
                        | WarningKind::ConcurrentCollectives
                        | WarningKind::BarrierDivergence
                ),
                "{}: unexpected context warning {:?}: {}",
                w.name,
                warn.kind,
                warn.message
            );
        }
    }
}

#[test]
fn catalogue_compiles() {
    for case in error_catalogue() {
        let r = parse_and_check(case.id, &case.source);
        assert!(
            r.is_ok(),
            "case {} does not compile: {:?}",
            case.id,
            r.err().map(|(d, sm)| d.render(&sm))
        );
    }
}

#[test]
fn workloads_have_realistic_scale() {
    // Class B sizes should be ordered: HERA biggest, EPCC mid, NAS
    // solvers substantial.
    let suite = figure1_suite(WorkloadClass::B);
    let by_name: std::collections::HashMap<_, _> =
        suite.iter().map(|w| (w.name, w.lines())).collect();
    assert!(by_name["HERA"] > by_name["EPCC"], "{by_name:?}");
    assert!(by_name["BT-MZ"] > 200, "{by_name:?}");
    for w in &suite {
        assert!(w.lines() > 100, "{} too small: {}", w.name, w.lines());
    }
}
