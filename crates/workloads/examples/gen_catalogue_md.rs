//! Prints the generated table block of `CATALOGUE.md`:
//!
//! ```console
//! cargo run -p parcoach-workloads --example gen_catalogue_md
//! ```
//!
//! Paste the output between the BEGIN/END markers in `CATALOGUE.md`
//! whenever the catalogue changes (the `catalogue_md` drift test tells
//! you when).

fn main() {
    print!("{}", parcoach_workloads::catalogue_markdown());
}
