//! Cross-crate integration tests: the full static → instrument → run
//! pipeline over the error catalogue and the generated benchmark
//! workloads.

use parcoach::interp::{check_and_run, RunConfig};
use parcoach::workloads::{
    error_catalogue, figure1_suite, ExpectDynamic, ExpectStatic, WorkloadClass,
};

/// Every catalogue case must match its recorded static and dynamic
/// expectations — this is experiment E3 as a test.
#[test]
fn catalogue_detection_matrix() {
    for case in error_catalogue() {
        let (report, run) = check_and_run(case.id, &case.source, RunConfig::fast_fail(2, 4), true)
            .unwrap_or_else(|e| panic!("{}: compile error {e}", case.id));
        match case.expect_static {
            ExpectStatic::Clean => assert!(
                report.is_clean(),
                "{}: expected clean static report, got {:#?}",
                case.id,
                report.warnings
            ),
            ExpectStatic::Warns(code) => assert!(
                report.warnings.iter().any(|w| w.kind.code() == code),
                "{}: expected a `{code}` warning, got {:?}",
                case.id,
                report
                    .warnings
                    .iter()
                    .map(|w| w.kind.code())
                    .collect::<Vec<_>>()
            ),
        }
        match case.expect_dynamic {
            ExpectDynamic::Clean => {
                assert!(run.is_clean(), "{}: {:?}", case.id, run.errors)
            }
            ExpectDynamic::CaughtByCheck => {
                assert!(!run.is_clean(), "{}: expected failure", case.id);
                assert!(
                    run.detected_by_check(),
                    "{}: expected PARCOACH check, got {:?}",
                    case.id,
                    run.errors
                );
            }
            ExpectDynamic::CaughtBySubstrate | ExpectDynamic::Fails => {
                assert!(!run.is_clean(), "{}: expected failure, ran clean", case.id)
            }
            ExpectDynamic::MayFail => {} // either outcome accepted
        }
    }
}

/// The clean benchmark programs must run to completion under full
/// selective instrumentation — the false-positive warnings they carry
/// (uniform conditionals) are cleared dynamically.
#[test]
fn class_a_workloads_run_clean_instrumented() {
    for w in figure1_suite(WorkloadClass::A) {
        let cfg = RunConfig {
            ranks: 2,
            default_threads: 2,
            ..RunConfig::default()
        };
        let (report, run) = check_and_run(w.name, &w.source, cfg, true)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            run.is_clean(),
            "{}: instrumented run failed ({} static warnings):\n{:#?}",
            w.name,
            report.warnings.len(),
            run.errors
        );
    }
}

/// The same workloads uninstrumented (sanity: the simulator itself, not
/// the instrumentation, keeps them alive).
#[test]
fn class_a_workloads_run_clean_plain() {
    for w in figure1_suite(WorkloadClass::A) {
        let cfg = RunConfig {
            ranks: 2,
            default_threads: 2,
            ..RunConfig::default()
        };
        let (_report, run) = check_and_run(w.name, &w.source, cfg, false)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(run.is_clean(), "{}: {:?}", w.name, run.errors);
    }
}

/// Instrumentation must not change the observable output of a correct
/// program (differential run).
#[test]
fn instrumentation_is_output_transparent() {
    let src = r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    let acc = 0;
    for (step in 0..3) {
        parallel num_threads(2) {
            single { acc = acc + int_of(MPI_Allreduce(1.0, SUM)); }
        }
    }
    print(acc);
    MPI_Finalize();
}
"#;
    let cfg = || RunConfig {
        ranks: 2,
        default_threads: 2,
        ..RunConfig::default()
    };
    let (_r1, plain) = check_and_run("t.mh", src, cfg(), false).unwrap();
    let (_r2, instr) = check_and_run("t.mh", src, cfg(), true).unwrap();
    assert!(plain.is_clean() && instr.is_clean());
    let mut a = plain.output.clone();
    let mut b = instr.output.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "instrumentation changed program output");
}

/// Whole-team communicator creation is flagged statically AND the
/// instrumented run fails dynamically (comm-management collectives are
/// guarded like data collectives: the monothread assert or the matcher
/// intercepts, whichever the schedule reaches first — same semantics
/// as the whole-team data-collective case).
#[test]
fn whole_team_comm_dup_fails_instrumented() {
    let src = r#"
fn main() {
    MPI_Init_thread(MULTIPLE);
    parallel num_threads(2) {
        let c = MPI_Comm_dup(MPI_COMM_WORLD);
    }
    MPI_Finalize();
}
"#;
    let (report, run) = check_and_run("dup.mh", src, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "multithreaded-collective"),
        "{:?}",
        report.warnings
    );
    assert!(
        !run.is_clean(),
        "instrumented whole-team comm creation must fail"
    );
    assert!(
        run.errors.iter().any(|e| e.kind.is_verification_error()),
        "{:?}",
        run.errors
    );
}

/// The p2p epoch census must fire even when the leaking send lives in
/// a helper function and `MPI_Finalize` in `main` (the census is placed
/// at the finalize, and the world counters are global).
#[test]
fn p2p_census_catches_leak_in_helper() {
    let src = r#"
fn leak() {
    let peer = size() - 1 - rank();
    MPI_Send(1, peer, 5);
}
fn main() {
    MPI_Init();
    leak();
    MPI_Barrier();
    MPI_Finalize();
}
"#;
    let (report, run) = check_and_run("leak.mh", src, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "unmatched-p2p"),
        "{:?}",
        report.warnings
    );
    assert!(
        !run.is_clean(),
        "latent leak must be caught when instrumented"
    );
    assert!(run.detected_by_check(), "{:?}", run.errors);
    // Uninstrumented, the same program is silently clean — the latent
    // error the census exists for.
    let (_r, plain) = check_and_run("leak.mh", src, RunConfig::fast_fail(2, 2), false).unwrap();
    assert!(plain.is_clean(), "{:?}", plain.errors);
}

/// Divergent communicator creation is statically visible: comm_split /
/// comm_dup are collectives over their parent.
#[test]
fn divergent_comm_creation_reported_statically() {
    let src = r#"
fn main() {
    MPI_Init();
    if (rank() == 0) { let c = MPI_Comm_dup(MPI_COMM_WORLD); }
    MPI_Finalize();
}
"#;
    let (report, run) = check_and_run("dup.mh", src, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "collective-mismatch"),
        "{:?}",
        report.warnings
    );
    assert!(!run.is_clean(), "{:?}", run.errors);
}

/// A genuine wait cycle must terminate via the wait-for-graph detector
/// — quickly (the liveness census, not the operation timeout) and as a
/// check detection naming the cycle.
#[test]
fn wait_cycle_terminates_via_wait_for_graph() {
    let case = error_catalogue()
        .into_iter()
        .find(|c| c.id == "nonblocking-wait-cycle")
        .expect("catalogue case exists");
    // Generous op timeout: if the detector regressed, the census would
    // not fire and this test would sit in the blocking wait instead of
    // finishing in milliseconds.
    let cfg = RunConfig {
        ranks: 2,
        default_threads: 2,
        mpi_timeout: std::time::Duration::from_secs(30),
        ..RunConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (report, run) = check_and_run(case.id, &case.source, cfg, true).unwrap();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "wait cycle must be detected by the census, not the 30s timeout"
    );
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "mismatched-order"),
        "{:?}",
        report.warnings
    );
    assert!(!run.is_clean());
    assert!(run.detected_by_check(), "{:?}", run.errors);
    assert!(
        run.errors.iter().any(|e| e.kind.code() == "wait-cycle"),
        "{:?}",
        run.errors
    );
}

/// A leaked request (isend never waited, message never received) is
/// silent uninstrumented but caught by the pre-finalize census when
/// instrumented — the non-blocking sibling of `p2p_census_catches_leak_in_helper`.
#[test]
fn leaked_request_caught_by_census() {
    let case = error_catalogue()
        .into_iter()
        .find(|c| c.id == "request-leak-isend")
        .expect("catalogue case exists");
    let (report, run) =
        check_and_run(case.id, &case.source, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "unwaited-request"),
        "{:?}",
        report.warnings
    );
    assert!(!run.is_clean());
    assert!(run.detected_by_check(), "{:?}", run.errors);
    let (_r, plain) =
        check_and_run(case.id, &case.source, RunConfig::fast_fail(2, 2), false).unwrap();
    assert!(
        plain.is_clean(),
        "latent without the census: {:?}",
        plain.errors
    );
}

/// Regression (found by `fuzz_differential`, minimized by its
/// delta-debugger): functions unreachable from `main` must not be
/// diagnosed. Before the fix, an uncalled helper bearing a head-to-head
/// `recv; send`, a request leak and an unreceived send produced
/// `mismatched-order` / `unwaited-request` / `unmatched-p2p` warnings —
/// all guaranteed false positives, since the code never executes.
#[test]
fn uncalled_helper_is_not_diagnosed() {
    let src = r#"
fn dead() {
    let peer = size() - 1 - rank();
    let v = MPI_Recv(peer, 1);
    MPI_Send(1.0, peer, 1);
    let s = MPI_Isend(2.0, peer, 24);
    MPI_Send(42, peer, 21);
}
fn main() {
    MPI_Init();
    MPI_Barrier();
    MPI_Finalize();
}
"#;
    let (report, run) = check_and_run("dead.mh", src, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report.is_clean(),
        "uncalled helper must not warn: {:?}",
        report.warnings
    );
    assert!(run.is_clean(), "{:?}", run.errors);
}

/// The soundness half of the same fix: before reachability filtering,
/// an uncalled helper's send fed the module-wide p2p matcher and
/// silently *balanced* the key of a reachable receive — masking a real
/// deadlock from the static phase.
#[test]
fn unreachable_send_cannot_balance_reachable_recv() {
    let src = r#"
fn dead() {
    let peer = size() - 1 - rank();
    MPI_Send(1.0, peer, 5);
}
fn main() {
    MPI_Init();
    let peer = size() - 1 - rank();
    let v = MPI_Recv(peer, 5);
    MPI_Finalize();
}
"#;
    let (report, run) = check_and_run("mask.mh", src, RunConfig::fast_fail(2, 2), true).unwrap();
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.kind.code() == "unmatched-p2p"),
        "the reachable receive has no reachable sender: {:?}",
        report.warnings
    );
    assert!(!run.is_clean(), "the receive deadlocks at run time");
}

/// Scaling smoke test: more ranks and threads still work.
#[test]
fn four_ranks_four_threads() {
    let src = r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    let v = 0;
    parallel num_threads(4) {
        single { v = int_of(MPI_Allreduce(float_of(rank() + 1), SUM)); }
    }
    print(v);
    MPI_Finalize();
}
"#;
    let cfg = RunConfig {
        ranks: 4,
        default_threads: 4,
        ..RunConfig::default()
    };
    let (_report, run) = check_and_run("t.mh", src, cfg, true).unwrap();
    assert!(run.is_clean(), "{:?}", run.errors);
    assert_eq!(run.output.len(), 4);
    assert!(run.output.iter().all(|l| l.ends_with("10"))); // 1+2+3+4
}
