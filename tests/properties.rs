//! Property-based tests over randomly generated structured programs.
//!
//! The generator builds *correct-by-construction* hybrid programs: MPI
//! collectives appear only in uniform positions (top level, inside
//! `single`/`master` in parallel regions), bounds are rank-independent,
//! and barriers are never control-divergent. For such programs the
//! invariants are:
//!
//! 1. they compile and their IR verifies;
//! 2. phase 1/2 of the static analysis stay silent (no context or
//!    concurrency warnings) and no barrier divergence is reported;
//! 3. optimization preserves sequential program output;
//! 4. instrumented parallel runs complete cleanly.

use parcoach::analysis::{analyze_module, AnalysisOptions, WarningKind};
use parcoach::front::parse_and_check;
use parcoach::interp::{check_and_run, Executor, RunConfig};
use parcoach::ir::lower::lower_program;
use proptest::prelude::*;

/// One generated statement (recursion bounded by `depth`).
fn stmt_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..5i64).prop_map(|k| format!("acc = acc + {k};")),
        (1..4i64).prop_map(|k| format!("acc = acc * {k} % 1000;")),
        Just("x = float_of(acc) * 0.5;".to_string()),
        Just("let tmp = acc + int_of(x); acc = tmp % 97;".to_string()),
        Just("acc = acc + int_of(MPI_Allreduce(1.0, SUM));".to_string()),
        Just("MPI_Barrier();".to_string()),
        Just("acc = acc + int_of(MPI_Bcast(float_of(acc % 7), 0));".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = stmt_strategy(depth - 1);
    let inner2 = stmt_strategy(depth - 1);
    let inner3 = stmt_strategy(depth - 1);
    prop_oneof![
        4 => leaf,
        // Uniform sequential loop.
        1 => (1..4i64, inner.clone()).prop_map(|(n, b)| format!(
            "for (i{n} in 0..{n}) {{ {b} }}"
        )),
        // Uniform conditional — both arms identical, so even the
        // matching phase with refinement stays silent.
        1 => inner2.prop_map(|b| format!(
            "if (acc % 2 == 0) {{ {b} }} else {{ {b} }}"
        )),
        // Parallel region: compute pfor + collective safely in single.
        1 => inner3.prop_map(|b| format!(
            "parallel num_threads(2) {{
                pfor (j in 0..8) {{ let w = j * 2; }}
                single {{ {b} }}
            }}"
        )),
    ]
    .boxed()
}

fn program_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt_strategy(2), 1..6).prop_map(|stmts| {
        format!(
            "fn main() {{
                MPI_Init_thread(SERIALIZED);
                let acc = 1;
                let x = 0.0;
                {}
                print(acc);
                MPI_Finalize();
            }}",
            stmts.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Correct-by-construction programs compile, verify, and trigger no
    /// context/concurrency/divergence warnings.
    #[test]
    fn generated_programs_are_statically_quiet(src in program_strategy()) {
        let unit = parse_and_check("gen.mh", &src)
            .map_err(|(d, sm)| TestCaseError::fail(d.render(&sm)))?;
        let module = lower_program(&unit.program, &unit.signatures);
        prop_assert!(parcoach::ir::verify_module(&module).is_empty());
        let report = analyze_module(&module, &AnalysisOptions::default());
        for w in &report.warnings {
            prop_assert!(
                !matches!(
                    w.kind,
                    WarningKind::MultithreadedCollective
                        | WarningKind::NestedParallelismCollective
                        | WarningKind::MultithreadedCall
                        | WarningKind::ConcurrentCollectives
                        | WarningKind::SelfConcurrentRegion
                        | WarningKind::BarrierDivergence
                        | WarningKind::InsufficientThreadLevel
                ),
                "unexpected warning {:?}: {} in\n{src}",
                w.kind,
                w.message
            );
        }
    }

    /// Optimization must not change the output of (sequential projections
    /// of) generated programs.
    #[test]
    fn optimization_preserves_output(src in program_strategy()) {
        let unit = parse_and_check("gen.mh", &src)
            .map_err(|(d, sm)| TestCaseError::fail(d.render(&sm)))?;
        let plain = lower_program(&unit.program, &unit.signatures);
        let mut optimized = plain.clone();
        parcoach::ir::opt::optimize_module(&mut optimized, 4);
        prop_assert!(parcoach::ir::verify_module(&optimized).is_empty());
        let cfg = || RunConfig {
            ranks: 1,
            default_threads: 2,
            ..RunConfig::default()
        };
        let out_plain = Executor::new(plain, cfg()).run();
        let out_opt = Executor::new(optimized, cfg()).run();
        prop_assert!(out_plain.is_clean(), "{:?}", out_plain.errors);
        prop_assert!(out_opt.is_clean(), "{:?}", out_opt.errors);
        prop_assert_eq!(out_plain.output, out_opt.output);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // threads+ranks per case: keep the budget sane
        max_shrink_iters: 50,
        .. ProptestConfig::default()
    })]

    /// Instrumented multi-rank runs of generated programs complete
    /// cleanly and agree with the uninstrumented output.
    #[test]
    fn generated_programs_run_clean_instrumented(src in program_strategy()) {
        let cfg = || RunConfig {
            ranks: 2,
            default_threads: 2,
            ..RunConfig::default()
        };
        let (_r, plain) = check_and_run("gen.mh", &src, cfg(), false)
            .map_err(TestCaseError::fail)?;
        let (_r, instr) = check_and_run("gen.mh", &src, cfg(), true)
            .map_err(TestCaseError::fail)?;
        prop_assert!(plain.is_clean(), "{:?}", plain.errors);
        prop_assert!(instr.is_clean(), "{:?}", instr.errors);
        let mut a = plain.output;
        let mut b = instr.output;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
