//! Property-based tests over randomly generated structured programs.
//!
//! The generator builds *correct-by-construction* hybrid programs: MPI
//! collectives appear only in uniform positions (top level, inside
//! `single`/`master` in parallel regions), bounds are rank-independent,
//! and barriers are never control-divergent. For such programs the
//! invariants are:
//!
//! 1. they compile and their IR verifies;
//! 2. phase 1/2 of the static analysis stay silent (no context or
//!    concurrency warnings) and no barrier divergence is reported;
//! 3. optimization preserves sequential program output;
//! 4. instrumented parallel runs complete cleanly.
//!
//! Programs come from a per-case `parcoach_testutil::Rng` seed; failing
//! cases print the seed and the full generated source.

use parcoach::analysis::{AnalysisSession, WarningKind};
use parcoach::front::parse_and_check;
use parcoach::interp::{check_and_run, Executor, RunConfig};
use parcoach::ir::lower::lower_program;
use parcoach_testutil::Rng;

/// One generated statement (recursion bounded by `depth`).
fn random_stmt(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(7) {
        0 => format!("acc = acc + {};", rng.range_i64(0, 5)),
        1 => format!("acc = acc * {} % 1000;", rng.range_i64(1, 4)),
        2 => "x = float_of(acc) * 0.5;".to_string(),
        3 => "let tmp = acc + int_of(x); acc = tmp % 97;".to_string(),
        4 => "acc = acc + int_of(MPI_Allreduce(1.0, SUM));".to_string(),
        5 => "MPI_Barrier();".to_string(),
        _ => "acc = acc + int_of(MPI_Bcast(float_of(acc % 7), 0));".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Same 4:1:1:1 weighting as the old prop_oneof.
    match rng.pick_weighted(&[4, 1, 1, 1]) {
        0 => leaf(rng),
        // Uniform sequential loop.
        1 => {
            let n = rng.range_i64(1, 4);
            let b = random_stmt(rng, depth - 1);
            format!("for (i{n} in 0..{n}) {{ {b} }}")
        }
        // Uniform conditional — both arms identical, so even the
        // matching phase with refinement stays silent.
        2 => {
            let b = random_stmt(rng, depth - 1);
            format!("if (acc % 2 == 0) {{ {b} }} else {{ {b} }}")
        }
        // Parallel region: compute pfor + collective safely in single.
        _ => {
            let b = random_stmt(rng, depth - 1);
            format!(
                "parallel num_threads(2) {{
                    pfor (j in 0..8) {{ let w = j * 2; }}
                    single {{ {b} }}
                }}"
            )
        }
    }
}

fn random_program(rng: &mut Rng) -> String {
    let n = rng.range_usize(1, 6);
    let stmts: Vec<String> = (0..n).map(|_| random_stmt(rng, 2)).collect();
    format!(
        "fn main() {{
            MPI_Init_thread(SERIALIZED);
            let acc = 1;
            let x = 0.0;
            {}
            print(acc);
            MPI_Finalize();
        }}",
        stmts.join("\n")
    )
}

/// Correct-by-construction programs compile, verify, and trigger no
/// context/concurrency/divergence warnings.
#[test]
fn generated_programs_are_statically_quiet() {
    for seed in 0..24 {
        let src = random_program(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        let module = lower_program(&unit.program, &unit.signatures);
        assert!(
            parcoach::ir::verify_module(&module).is_empty(),
            "seed {seed}"
        );
        let report = AnalysisSession::builder().build().check_module(&module);
        for w in &report.warnings {
            assert!(
                !matches!(
                    w.kind,
                    WarningKind::MultithreadedCollective
                        | WarningKind::NestedParallelismCollective
                        | WarningKind::MultithreadedCall
                        | WarningKind::ConcurrentCollectives
                        | WarningKind::SelfConcurrentRegion
                        | WarningKind::BarrierDivergence
                        | WarningKind::InsufficientThreadLevel
                ),
                "unexpected warning {:?}: {} (seed {seed}) in\n{src}",
                w.kind,
                w.message
            );
        }
    }
}

/// Optimization must not change the output of (sequential projections
/// of) generated programs.
#[test]
fn optimization_preserves_output() {
    for seed in 100..124 {
        let src = random_program(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        let plain = lower_program(&unit.program, &unit.signatures);
        let mut optimized = plain.clone();
        parcoach::ir::opt::optimize_module(&mut optimized, 4);
        assert!(
            parcoach::ir::verify_module(&optimized).is_empty(),
            "seed {seed}"
        );
        let cfg = || RunConfig {
            ranks: 1,
            default_threads: 2,
            ..RunConfig::default()
        };
        let out_plain = Executor::new(plain, cfg()).run();
        let out_opt = Executor::new(optimized, cfg()).run();
        assert!(out_plain.is_clean(), "seed {seed}: {:?}", out_plain.errors);
        assert!(out_opt.is_clean(), "seed {seed}: {:?}", out_opt.errors);
        assert_eq!(out_plain.output, out_opt.output, "seed {seed} in\n{src}");
    }
}

/// Instrumented multi-rank runs of generated programs complete
/// cleanly and agree with the uninstrumented output.
#[test]
fn generated_programs_run_clean_instrumented() {
    // Threads × ranks per case: 10 cases by default; the
    // `PARCOACH_PROP_BUDGET` multiplier scales the count now that rank
    // and team threads come from the reusable pool.
    for seed in 200..(200 + 10 * parcoach_testutil::case_budget(1)) {
        let src = random_program(&mut Rng::new(seed));
        let cfg = || RunConfig {
            ranks: 2,
            default_threads: 2,
            ..RunConfig::default()
        };
        let (_r, plain) = check_and_run("gen.mh", &src, cfg(), false)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let (_r, instr) = check_and_run("gen.mh", &src, cfg(), true)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(plain.is_clean(), "seed {seed}: {:?}", plain.errors);
        assert!(instr.is_clean(), "seed {seed}: {:?}", instr.errors);
        let mut a = plain.output;
        let mut b = instr.output;
        a.sort();
        b.sort();
        assert_eq!(a, b, "seed {seed} in\n{src}");
    }
}

/// Generator for the communicator-equivalence property: world-only
/// hybrid programs whose every MPI operation names `MPI_COMM_WORLD`
/// *explicitly*, including matched point-to-point traffic.
fn random_world_comm_program(rng: &mut Rng) -> String {
    let stmt = |rng: &mut Rng| match rng.below(6) {
        0 => "MPI_Barrier(MPI_COMM_WORLD);".to_string(),
        1 => "acc = acc + int_of(MPI_Allreduce(1.0, SUM, MPI_COMM_WORLD));".to_string(),
        2 => "acc = acc + int_of(MPI_Bcast(float_of(acc % 7), 0, MPI_COMM_WORLD));".to_string(),
        // Matched self-send/recv pair on an explicit world handle.
        3 => "MPI_Send(acc, rank(), 11, MPI_COMM_WORLD); \
              let rv = MPI_Recv(rank(), 11, MPI_COMM_WORLD); \
              acc = acc + int_of(rv) % 3;"
            .to_string(),
        4 => {
            let n = rng.range_i64(1, 4);
            format!("for (i{n} in 0..{n}) {{ MPI_Barrier(MPI_COMM_WORLD); }}")
        }
        _ => "parallel num_threads(2) {
                single { let x = MPI_Allreduce(1, SUM, MPI_COMM_WORLD); }
            }"
        .to_string(),
    };
    let n = rng.range_usize(1, 6);
    let stmts: Vec<String> = (0..n).map(|_| stmt(rng)).collect();
    format!(
        "fn main() {{
            MPI_Init_thread(SERIALIZED);
            let acc = 1;
            {}
            print(acc);
            MPI_Finalize();
        }}",
        stmts.join("\n")
    )
}

/// Strip every communicator operand from a module — exactly the
/// pre-refactor "single implicit communicator" IR shape, with spans and
/// registers untouched.
fn strip_comm_operands(m: &mut parcoach::ir::Module) {
    use parcoach::ir::instr::{Instr, MpiIr};
    for f in &mut m.funcs {
        for b in &mut f.blocks {
            for i in &mut b.instrs {
                if let Instr::Mpi {
                    op:
                        MpiIr::Collective { comm, .. }
                        | MpiIr::Send { comm, .. }
                        | MpiIr::Recv { comm, .. },
                    ..
                } = i
                {
                    *comm = None;
                }
            }
        }
    }
}

/// The per-communicator generalization must be invisible on modules
/// that only use `MPI_COMM_WORLD`: analysing the module as written
/// (explicit world handles flowing through registers) and analysing the
/// comm-stripped twin (the pre-refactor single-comm path) must produce
/// **byte-identical** reports — at `jobs = 1` and `jobs = 4` alike.
#[test]
fn world_only_analysis_matches_single_comm_path() {
    let session = |jobs| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(7)
            .build()
    };
    let (mut s1, mut s4) = (session(1), session(4));
    for seed in 300..(300 + 12 * parcoach_testutil::case_budget(1)) {
        let src = random_world_comm_program(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        let with_comms = lower_program(&unit.program, &unit.signatures);
        let mut stripped = with_comms.clone();
        strip_comm_operands(&mut stripped);
        let baseline = format!("{:?}", s1.check_module(&stripped));
        for (label, module, wide) in [
            ("with-comms jobs=1", &with_comms, false),
            ("with-comms jobs=4", &with_comms, true),
            ("stripped jobs=4", &stripped, true),
        ] {
            let s = if wide { &mut s4 } else { &mut s1 };
            let report = format!("{:?}", s.check_module(module));
            assert_eq!(
                report, baseline,
                "seed {seed}: {label} report differs from the single-comm path in\n{src}"
            );
        }
    }
}

/// Generator for the request-equivalence property: hybrid programs that
/// mix collectives and *blocking* point-to-point but never touch a
/// non-blocking request — the pre-refactor language surface.
fn random_blocking_only_program(rng: &mut Rng) -> String {
    let stmt = |rng: &mut Rng| match rng.below(6) {
        0 => "MPI_Barrier();".to_string(),
        1 => "acc = acc + int_of(MPI_Allreduce(1.0, SUM));".to_string(),
        // Matched self-send/recv pair (blocking path only).
        2 => "MPI_Send(acc, rank(), 11); \
              let rv = MPI_Recv(rank(), 11); \
              acc = acc + int_of(rv) % 3;"
            .to_string(),
        3 => "if (rank() == 0) { MPI_Barrier(); }".to_string(),
        4 => {
            let n = rng.range_i64(1, 4);
            format!("for (i{n} in 0..{n}) {{ acc = acc + i{n}; }}")
        }
        _ => "parallel num_threads(2) {
                single { let x = MPI_Allreduce(1, SUM); }
            }"
        .to_string(),
    };
    let n = rng.range_usize(1, 6);
    let stmts: Vec<String> = (0..n).map(|_| stmt(rng)).collect();
    format!(
        "fn main() {{
            MPI_Init_thread(SERIALIZED);
            let acc = 1;
            {}
            print(acc);
            MPI_Finalize();
        }}",
        stmts.join("\n")
    )
}

/// The non-blocking/request generalization must be invisible on modules
/// that never use requests: analysing with the request life-cycle pass
/// enabled (the default) and with it disabled (the pre-refactor
/// blocking path) must produce **byte-identical** reports — at
/// `jobs = 1` and `jobs = 4` alike. The mirror of PR 3's
/// `world_only_analysis_matches_single_comm_path`.
#[test]
fn no_request_modules_match_blocking_path() {
    let session = |jobs, requests| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(11)
            .check_requests(requests)
            .build()
    };
    let mut requests1 = session(1, true);
    let mut requests4 = session(4, true);
    let mut blocking1 = session(1, false);
    let mut blocking4 = session(4, false);
    for seed in 400..(400 + 12 * parcoach_testutil::case_budget(1)) {
        let src = random_blocking_only_program(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        let module = lower_program(&unit.program, &unit.signatures);
        let baseline = format!("{:?}", blocking1.check_module(&module));
        for (label, s) in [
            ("with-requests jobs=1", &mut requests1),
            ("with-requests jobs=4", &mut requests4),
            ("blocking-path jobs=4", &mut blocking4),
        ] {
            let report = format!("{:?}", s.check_module(&module));
            assert_eq!(
                report, baseline,
                "seed {seed}: {label} report differs from the blocking path in\n{src}"
            );
        }
    }
}

/// Generator for the fact-store equivalence property: modules mixing
/// collectives (uniform and divergent), sub-communicators, blocking and
/// non-blocking point-to-point, wildcards and cross-function calls —
/// every fact the store interns (events, symbols, words, comm/request
/// resolutions) gets exercised.
fn random_fact_rich_module(rng: &mut Rng) -> String {
    let stmt = |rng: &mut Rng, fresh: &mut u32, callees: &[String]| -> String {
        let mut choices: Vec<u32> = (0..12).collect();
        if callees.is_empty() {
            choices.pop(); // no call statement without callees
        }
        match *rng.pick(&choices) {
            0 => "MPI_Barrier();".to_string(),
            1 => "acc = acc + int_of(MPI_Allreduce(1.0, SUM));".to_string(),
            // Divergent collective: PDF+ mismatch candidates.
            2 => "if (rank() == 0) { MPI_Barrier(); }".to_string(),
            // Balanced arms: refinement + event-sequence comparison.
            3 => "if (rank() % 2 == 0) { MPI_Barrier(); } else { MPI_Barrier(); }".to_string(),
            // Sub-communicator traffic: comm interning + per-comm PDF+.
            4 => {
                *fresh += 1;
                format!(
                    "let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); MPI_Barrier(c{f});",
                    f = fresh
                )
            }
            // Non-blocking exchange: request interning + deferred completion.
            5 => {
                *fresh += 1;
                format!(
                    "let r{f} = MPI_Irecv(peer, {t}); MPI_Send(1.0, peer, {t}); \
                     let v{f} = MPI_Wait(r{f});",
                    f = fresh,
                    t = rng.range_i64(1, 5)
                )
            }
            // Wildcard waitall pair.
            6 => {
                *fresh += 1;
                format!(
                    "let w{f} = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG); \
                     let s{f} = MPI_Isend(rank() + 1, peer, {t}); MPI_Waitall(w{f}, s{f});",
                    f = fresh,
                    t = rng.range_i64(5, 9)
                )
            }
            // Matched blocking self-pair.
            7 => "MPI_Send(acc, rank(), 11); let rv = MPI_Recv(rank(), 11); \
                  acc = acc + int_of(rv) % 3;"
                .to_string(),
            // Multithreaded + properly-single'd collectives: word interning.
            8 => "parallel num_threads(2) { let y = MPI_Allreduce(1.0, SUM); }".to_string(),
            9 => "parallel num_threads(2) { single { MPI_Barrier(); } }".to_string(),
            // Concurrency sites (nowait single pair).
            10 => "parallel num_threads(2) {
                    single nowait { MPI_Barrier(); }
                    single { let z = MPI_Allreduce(1.0, SUM); }
                }"
            .to_string(),
            // Cross-function call: symbol interning + taint propagation.
            _ => format!("{}();", rng.pick(callees)),
        }
    };
    let nfuncs = rng.range_usize(2, 6);
    let mut fresh = 0u32;
    let mut names: Vec<String> = Vec::new();
    let mut out = String::new();
    for f in 0..nfuncs {
        let name = format!("work_{f}");
        let nstmts = rng.range_usize(1, 4);
        let body: Vec<String> = (0..nstmts).map(|_| stmt(rng, &mut fresh, &names)).collect();
        out.push_str(&format!(
            "fn {name}() {{\n    let acc = 1;\n    let peer = size() - 1 - rank();\n    {}\n    print(acc);\n}}\n",
            body.join("\n    ")
        ));
        names.push(name);
    }
    let mut main_body = String::new();
    for name in &names {
        match rng.below(4) {
            0 => main_body.push_str(&format!("    {name}();\n")),
            1 => main_body.push_str(&format!("    if (rank() == 0) {{ {name}(); }}\n")),
            2 => main_body.push_str(&format!(
                "    parallel num_threads(2) {{ single {{ {name}(); }} }}\n"
            )),
            _ => {}
        }
    }
    format!(
        "{out}fn main() {{\n    MPI_Init_thread(MULTIPLE);\n{main_body}    MPI_Finalize();\n}}\n"
    )
}

/// The fact-store refactor must be report-invisible: the memoized PDF+
/// engine (`pdf_memo: true`, the default) and the legacy
/// recompute-per-event-set path (`pdf_memo: false`) must produce
/// **byte-identical** `StaticReport`s on ≥ 100 seeded fact-rich modules
/// (collectives + communicators + requests + wildcards), at `jobs = 1`
/// and `jobs = 4` alike.
#[test]
fn fact_store_matches_legacy_reports() {
    let session = |jobs, memo| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(23)
            .pdf_memo(memo)
            .build()
    };
    let mut memoized1 = session(1, true);
    let mut memoized4 = session(4, true);
    let mut legacy1 = session(1, false);
    let mut legacy4 = session(4, false);
    for seed in 500..600u64 {
        let src = random_fact_rich_module(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}\n{src}", d.render(&sm)));
        let module = lower_program(&unit.program, &unit.signatures);
        let baseline = legacy1.check_module(&module);
        let baseline_dbg = format!("{baseline:?}");
        let baseline_txt = baseline.render(&unit.source_map);
        for (label, s) in [
            ("memoized jobs=1", &mut memoized1),
            ("memoized jobs=4", &mut memoized4),
            ("legacy jobs=4", &mut legacy4),
        ] {
            let report = s.check_module(&module);
            assert_eq!(
                format!("{report:?}"),
                baseline_dbg,
                "seed {seed}: {label} report differs from the legacy PDF+ path in\n{src}"
            );
            assert_eq!(
                report.render(&unit.source_map),
                baseline_txt,
                "seed {seed}: {label} rendered report differs in\n{src}"
            );
        }
    }
}

/// The incremental worklist fixpoint must be report-invisible: the
/// delta-propagating driver (`incr_fixpoint: true`, the default) and
/// the legacy full-re-walk round loop (`incr_fixpoint: false`) must
/// produce **byte-identical** `StaticReport`s on ≥ 100 seeded fact-rich
/// modules (cross-function calls under mixed parallel/sequential
/// contexts), at `jobs = 1` and `jobs = 4` alike. The mirror of
/// `fact_store_matches_legacy_reports` for the context-propagation
/// phase.
#[test]
fn incr_fixpoint_matches_legacy_reports() {
    let session = |jobs, incremental| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(23)
            .incr_fixpoint(incremental)
            .build()
    };
    let mut worklist1 = session(1, true);
    let mut worklist4 = session(4, true);
    let mut legacy1 = session(1, false);
    let mut legacy4 = session(4, false);
    for seed in 600..700u64 {
        let src = random_fact_rich_module(&mut Rng::new(seed));
        let unit = parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}\n{src}", d.render(&sm)));
        let module = lower_program(&unit.program, &unit.signatures);
        let baseline = legacy1.check_module(&module);
        let baseline_dbg = format!("{baseline:?}");
        let baseline_txt = baseline.render(&unit.source_map);
        for (label, s) in [
            ("worklist jobs=1", &mut worklist1),
            ("worklist jobs=4", &mut worklist4),
            ("legacy jobs=4", &mut legacy4),
        ] {
            let report = s.check_module(&module);
            assert_eq!(
                format!("{report:?}"),
                baseline_dbg,
                "seed {seed}: {label} report differs from the legacy fixpoint in\n{src}"
            );
            assert_eq!(
                report.render(&unit.source_map),
                baseline_txt,
                "seed {seed}: {label} rendered report differs in\n{src}"
            );
        }
    }
}

/// Wider worlds are affordable now that rank threads are pooled: a
/// collective program over 8 ranks (16 under the extended budget), with
/// the result checked exactly.
#[test]
fn wide_world_allreduce_is_exact() {
    let ranks = if parcoach_testutil::case_budget(1) >= 4 {
        16
    } else {
        8
    };
    let src = "fn main() {
        MPI_Init();
        let sum = MPI_Allreduce(rank() + 1, SUM);
        print(sum);
        MPI_Finalize();
    }";
    let cfg = RunConfig {
        ranks,
        default_threads: 2,
        ..RunConfig::default()
    };
    let (_report, run) = check_and_run("wide.mh", src, cfg, true).expect("compiles");
    assert!(run.is_clean(), "{:?}", run.errors);
    let expected = (ranks * (ranks + 1) / 2).to_string();
    assert_eq!(run.output.len(), ranks);
    for line in &run.output {
        assert!(line.contains(&expected), "{line}");
    }
}
