//! Determinism properties of the pooled pipeline.
//!
//! 1. **Static**: for seeded random multi-function modules, an
//!    [`AnalysisSession`] over a 1-lane pool and over an N-lane
//!    deterministic pool produce *byte-identical* `StaticReport`s (both
//!    the `Debug` form and the rendered text). The generator leans into
//!    what the fan-out must keep ordered: many functions, divergent
//!    collectives (mismatch warnings), multithreaded collectives
//!    (phase-1 warnings), concurrency sites (global renumbering) and
//!    cross-function calls (taint propagation).
//! 2. **Dynamic**: every error-catalogue case classifies identically
//!    under pooled and unpooled (fresh-thread) execution — cleanliness,
//!    check-interception and error-kind sets all match the catalogue's
//!    expectation either way.

use parcoach::analysis::AnalysisSession;
use parcoach::front::parse_and_check;
use parcoach::interp::{check_and_run, RunConfig};
use parcoach::ir::lower::lower_program;
use parcoach::workloads::{error_catalogue, ExpectDynamic};
use parcoach_testutil::Rng;

/// One random statement for a function body (uses locals `acc`/`x`).
fn random_stmt(rng: &mut Rng, fresh: &mut u32, callees: &[String]) -> String {
    let mut choices: Vec<u32> = (0..9).collect();
    if callees.is_empty() {
        choices.pop(); // no call statement without callees
    }
    match *rng.pick(&choices) {
        0 => format!("acc = acc + {};", rng.range_i64(1, 7)),
        1 => "x = float_of(acc) * 0.5;".to_string(),
        2 => "MPI_Barrier();".to_string(),
        3 => "acc = acc + int_of(MPI_Allreduce(1.0, SUM));".to_string(),
        // Divergent collective: phase-3 mismatch candidates.
        4 => "if (rank() == 0) { MPI_Barrier(); }".to_string(),
        // Multithreaded collective: phase-1 warnings.
        5 => "parallel num_threads(2) { let y = MPI_Allreduce(1.0, SUM); }".to_string(),
        // Clean parallel region with a single'd collective.
        6 => "parallel num_threads(2) { single { MPI_Barrier(); } }".to_string(),
        7 => {
            *fresh += 1;
            let v = format!("i{fresh}");
            format!(
                "for ({v} in 0..{}) {{ acc = acc + {v}; }}",
                rng.range_i64(1, 4)
            )
        }
        _ => format!("{}();", rng.pick(callees)),
    }
}

/// A module of several functions; later functions may call earlier ones
/// (so taint propagates through a DAG), and `main` calls a few from
/// mixed contexts.
fn random_module(rng: &mut Rng) -> String {
    let nfuncs = rng.range_usize(3, 8);
    let mut fresh = 0u32;
    let mut names: Vec<String> = Vec::new();
    let mut out = String::new();
    for f in 0..nfuncs {
        let name = format!("work_{f}");
        let nstmts = rng.range_usize(1, 5);
        let body: Vec<String> = (0..nstmts)
            .map(|_| random_stmt(rng, &mut fresh, &names))
            .collect();
        out.push_str(&format!(
            "fn {name}() {{\n    let acc = 1;\n    let x = 0.0;\n    {}\n    print(acc + int_of(x));\n}}\n",
            body.join("\n    ")
        ));
        names.push(name);
    }
    let mut main_body = String::new();
    for name in &names {
        match rng.below(4) {
            0 => main_body.push_str(&format!("    {name}();\n")),
            1 => main_body.push_str(&format!("    if (rank() == 0) {{ {name}(); }}\n")),
            2 => main_body.push_str(&format!(
                "    parallel num_threads(2) {{ single {{ {name}(); }} }}\n"
            )),
            _ => {} // not called at all
        }
    }
    out.push_str(&format!(
        "fn main() {{\n    MPI_Init_thread(SERIALIZED);\n{main_body}    MPI_Finalize();\n}}\n"
    ));
    out
}

/// 50 seeded random modules: the report is byte-identical between the
/// sequential reference schedule and a 4-lane deterministic pool.
#[test]
fn analyze_reports_identical_across_pool_widths() {
    let session = |jobs| {
        AnalysisSession::builder()
            .jobs(jobs)
            .deterministic(true)
            .seed(0xD5)
            .build()
    };
    let (mut s1, mut s4) = (session(1), session(4));
    for seed in 0..50 {
        let src = random_module(&mut Rng::new(seed));
        let unit = parse_and_check("det.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}\n{src}", d.render(&sm)));
        let module = lower_program(&unit.program, &unit.signatures);
        let seq = s1.check_module(&module);
        let par = s4.check_module(&module);
        assert_eq!(
            format!("{seq:?}"),
            format!("{par:?}"),
            "seed {seed}: reports diverge\n{src}"
        );
        assert_eq!(
            seq.render(&unit.source_map),
            par.render(&unit.source_map),
            "seed {seed}: rendered reports diverge\n{src}"
        );
    }
}

/// Re-analyzing the *same* module on the same pool is also stable (no
/// hidden iteration-order leaks through HashMaps).
#[test]
fn analyze_is_stable_across_repeats() {
    let mut s4 = AnalysisSession::builder()
        .jobs(4)
        .deterministic(true)
        .seed(9)
        .build();
    let src = random_module(&mut Rng::new(1234));
    let unit = parse_and_check("det.mh", &src).expect("valid");
    let module = lower_program(&unit.program, &unit.signatures);
    let first = format!("{:?}", s4.check_module(&module));
    for _ in 0..5 {
        let again = format!("{:?}", s4.check_module(&module));
        assert_eq!(first, again, "\n{src}");
    }
}

/// Classification of one run, for comparing pooled vs. unpooled.
fn classify(run: &parcoach::interp::RunReport) -> (bool, bool, Vec<&'static str>) {
    let mut kinds: Vec<&'static str> = run.errors.iter().map(|e| e.kind.code()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    (run.is_clean(), run.detected_by_check(), kinds)
}

/// Every catalogue case behaves the same whether rank/team threads come
/// from the pool or are spawned fresh.
#[test]
fn catalogue_classifies_identically_pooled_and_unpooled() {
    for case in error_catalogue() {
        let run_with = |pooled: bool| {
            let cfg = RunConfig {
                pooled,
                ..RunConfig::fast_fail(2, 4)
            };
            let (_report, run) =
                check_and_run(case.id, &case.source, cfg, true).expect("catalogue case compiles");
            run
        };
        let pooled = run_with(true);
        let unpooled = run_with(false);
        // Error *interleavings* may differ run to run for MayFail cases;
        // the verdict classes must not.
        if case.expect_dynamic != ExpectDynamic::MayFail {
            let a = classify(&pooled);
            let b = classify(&unpooled);
            assert_eq!(
                a.0, b.0,
                "{}: cleanliness differs (pooled {a:?} vs unpooled {b:?})",
                case.id
            );
        }
        for (label, run) in [("pooled", &pooled), ("unpooled", &unpooled)] {
            let ok = match case.expect_dynamic {
                ExpectDynamic::Clean => run.is_clean(),
                ExpectDynamic::CaughtByCheck => !run.is_clean() && run.detected_by_check(),
                ExpectDynamic::CaughtBySubstrate | ExpectDynamic::Fails => !run.is_clean(),
                ExpectDynamic::MayFail => true,
            };
            assert!(
                ok,
                "{} ({label}): unexpected dynamic outcome {:?}",
                case.id,
                classify(run)
            );
        }
    }
}
