//! The paper's headline scenario: a collective whose execution depends
//! on the MPI rank. Statically PARCOACH warns at the conditional; at run
//! time the `CC` check stops the program *before* the mismatched
//! collective would deadlock real MPI — reporting, per rank, which
//! operation each process was about to execute.
//!
//! ```text
//! cargo run --example detect_deadlock
//! ```

use parcoach::interp::{check_and_run, RunConfig};

const BUGGY: &str = r#"
fn main() {
    let data = rank() * 10;
    if (rank() == 0) {
        // Rank 0 waits at a barrier...
        MPI_Barrier();
    } else {
        // ...while everyone else enters a reduction: deadlock on a real
        // machine.
        let sum = MPI_Allreduce(data, SUM);
    }
}
"#;

fn main() {
    println!("=== 1. uninstrumented run (what MUST-style matching sees) ===");
    let (report, run) = check_and_run(
        "deadlock.mh",
        BUGGY,
        RunConfig::fast_fail(2, 1),
        /* instrument = */ false,
    )
    .expect("compiles");
    println!("static warnings: {}", report.warnings.len());
    for w in &report.warnings {
        println!("  - [{}] {}", w.kind, w.message);
    }
    let err = run.first_error().expect("the bug must surface");
    println!("dynamic outcome: {err}");
    assert!(!run.detected_by_check());

    println!();
    println!("=== 2. instrumented run (PARCOACH CC intercepts first) ===");
    let (_report, run) = check_and_run(
        "deadlock.mh",
        BUGGY,
        RunConfig::fast_fail(2, 1),
        /* instrument = */ true,
    )
    .expect("compiles");
    let err = run.first_error().expect("the bug must surface");
    println!("dynamic outcome: {err}");
    assert!(
        run.detected_by_check(),
        "the CC check must fire before the collectives mismatch"
    );
    println!();
    println!(
        "the CC color all-reduce ran *before* the collectives, so the error \
         names both sides (MPI_Barrier vs MPI_Allreduce) with no deadlock."
    );
}
