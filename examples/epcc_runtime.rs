//! Runtime-overhead demo (experiment E4): run the EPCC-like mixed-mode
//! suite on the simulated hybrid runtime with and without PARCOACH
//! instrumentation and compare wall-clock times — the "low overhead"
//! claim of the paper's abstract.
//!
//! ```text
//! cargo run --release --example epcc_runtime
//! ```

use parcoach::analysis::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach::front::parse_and_check;
use parcoach::interp::{Executor, RunConfig};
use parcoach::ir::lower::lower_program;
use parcoach::workloads::{epcc, WorkloadClass};
use std::time::Instant;

fn main() {
    let w = epcc::generate(WorkloadClass::A);
    let unit = parse_and_check(w.name, &w.source).expect("compiles");
    let module = lower_program(&unit.program, &unit.signatures);
    let report = AnalysisSession::builder().build().check_module(&module);
    println!(
        "static phase: {} warning(s), {} CC function(s)",
        report.warnings.len(),
        report.plan.cc_functions.len()
    );
    let (instrumented, stats) = instrument_module(&module, &report, InstrumentMode::Selective);
    println!(
        "instrumentation: {} CC + {} return-CC + {} asserts + {} counters",
        stats.cc_collective, stats.cc_return, stats.monothread_asserts, stats.concurrency_sites
    );

    let cfg = || RunConfig {
        ranks: 2,
        default_threads: 2,
        ..RunConfig::default()
    };
    let plain = Executor::new(module, cfg());
    let instr = Executor::new(instrumented, cfg());

    let time = |ex: &Executor, label: &str| {
        // Warm-up + 5 measured runs, median.
        let r = ex.run();
        assert!(r.is_clean(), "{label}: {:?}", r.errors);
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let r = ex.run();
            assert!(r.is_clean());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    };

    let tp = time(&plain, "plain");
    let ti = time(&instr, "instrumented");
    println!("plain run:        {tp:.2?}");
    println!("instrumented run: {ti:.2?}");
    println!(
        "runtime overhead: {:+.1}%",
        (ti.as_secs_f64() / tp.as_secs_f64() - 1.0) * 100.0
    );
    println!(
        "\nselective instrumentation only guards the statically-unproven \
         collective sites, so correct placements (masteronly / funneled / \
         serialized kernels) run unchecked and the overhead stays low."
    );
}
