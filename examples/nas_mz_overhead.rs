//! Mini Figure 1: compile the three NAS multi-zone benchmarks through
//! the baseline pipeline, the warnings pipeline and the full
//! warnings+codegen pipeline, and print the overhead table.
//!
//! ```text
//! cargo run --release --example nas_mz_overhead
//! ```
//! (Use `--release`: debug-build timings exaggerate the analysis share.)

use parcoach::analysis::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach::front::parse_and_check;
use parcoach::ir::lower::lower_program;
use parcoach::workloads::{nas_mz, MzKind, WorkloadClass};
use std::time::Instant;

fn main() {
    println!(
        "{:<7} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "bench", "lines", "baseline", "warnings", "warn+code", "warn%", "code%"
    );
    for kind in [MzKind::BT, MzKind::SP, MzKind::LU] {
        let w = nas_mz::generate(kind, WorkloadClass::B);
        let reps = 9;
        let mut session = AnalysisSession::builder().build();
        let (mut tb, mut tw, mut tc) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..=reps {
            // baseline: parse + lower + optimize + regalloc
            let t0 = Instant::now();
            let unit = parse_and_check(w.name, &w.source).unwrap();
            let mut m = lower_program(&unit.program, &unit.signatures);
            parcoach::ir::opt::optimize_module(&mut m, 4);
            for f in &m.funcs {
                let _ = parcoach::ir::opt::allocate(f);
            }
            tb.push(t0.elapsed());
            // + warnings
            let t0 = Instant::now();
            let unit = parse_and_check(w.name, &w.source).unwrap();
            let mut m = lower_program(&unit.program, &unit.signatures);
            let _report = session.check_module(&m);
            parcoach::ir::opt::optimize_module(&mut m, 4);
            for f in &m.funcs {
                let _ = parcoach::ir::opt::allocate(f);
            }
            tw.push(t0.elapsed());
            // + verification code generation
            let t0 = Instant::now();
            let unit = parse_and_check(w.name, &w.source).unwrap();
            let m = lower_program(&unit.program, &unit.signatures);
            let report = session.check_module(&m);
            let (mut mi, _stats) = instrument_module(&m, &report, InstrumentMode::Selective);
            parcoach::ir::opt::optimize_module(&mut mi, 4);
            for f in &mi.funcs {
                let _ = parcoach::ir::opt::allocate(f);
            }
            tc.push(t0.elapsed());
        }
        // Drop the warm-up sample, report medians.
        let med = |v: &mut Vec<std::time::Duration>| {
            v.remove(0);
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (b, wn, cd) = (med(&mut tb), med(&mut tw), med(&mut tc));
        let pct = |x: std::time::Duration| (x.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0;
        println!(
            "{:<7} {:>7} {:>12} {:>12} {:>12} {:>8.1}% {:>8.1}%",
            w.name,
            w.lines(),
            format!("{b:.2?}"),
            format!("{wn:.2?}"),
            format!("{cd:.2?}"),
            pct(wn),
            pct(cd)
        );
    }
    println!();
    println!(
        "Paper (Figure 1): overhead ≤ ~6% against a full GCC compilation; here \
         the baseline is a lightweight research compiler, so the same absolute \
         analysis cost shows up as a larger percentage (see EXPERIMENTS.md)."
    );
}
