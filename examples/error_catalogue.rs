//! Run the complete error catalogue — every hybrid-collective error
//! pattern the paper's analysis covers, plus correct controls and the
//! classic static false positives — and print the detection matrix.
//!
//! ```text
//! cargo run --example error_catalogue
//! ```

use parcoach::interp::{check_and_run, RunConfig};
use parcoach::workloads::{error_catalogue, ExpectDynamic, ExpectStatic};

fn main() {
    println!(
        "{:<28} | {:<9} | {:<8} | {:<9} | result",
        "case", "static", "dynamic", "by-check"
    );
    println!("{}", "-".repeat(72));
    let mut failures = 0;
    for case in error_catalogue() {
        let (report, run) = check_and_run(case.id, &case.source, RunConfig::fast_fail(2, 4), true)
            .expect("catalogue programs compile");
        let static_str = if report.is_clean() { "clean" } else { "warns" };
        let dynamic_str = if run.is_clean() { "clean" } else { "fails" };
        let by_check = if run.detected_by_check() { "yes" } else { "-" };
        let ok = match (case.expect_static, case.expect_dynamic) {
            (ExpectStatic::Clean, _) if !report.is_clean() => false,
            (ExpectStatic::Warns(code), _)
                if !report.warnings.iter().any(|w| w.kind.code() == code) =>
            {
                false
            }
            (_, ExpectDynamic::Clean) => run.is_clean(),
            (_, ExpectDynamic::CaughtByCheck) => !run.is_clean() && run.detected_by_check(),
            (_, ExpectDynamic::CaughtBySubstrate | ExpectDynamic::Fails) => !run.is_clean(),
            (_, ExpectDynamic::MayFail) => true,
        };
        if !ok {
            failures += 1;
        }
        println!(
            "{:<28} | {:<9} | {:<8} | {:<9} | {}",
            case.id,
            static_str,
            dynamic_str,
            by_check,
            if ok { "as expected" } else { "UNEXPECTED" }
        );
    }
    println!("{}", "-".repeat(72));
    if failures == 0 {
        println!("all cases behaved as the paper predicts.");
    } else {
        println!("{failures} case(s) diverged!");
        std::process::exit(1);
    }
}
