//! Quickstart: compile, statically verify, instrument and run a small
//! hybrid MPI+OpenMP program.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parcoach::analysis::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach::front::parse_and_check;
use parcoach::interp::{Executor, RunConfig};
use parcoach::ir::lower::lower_program;

const PROGRAM: &str = r#"
fn main() {
    MPI_Init_thread(SERIALIZED);
    let total = 0.0;
    parallel num_threads(4) {
        // Every thread works on its share of the grid...
        pfor (i in 0..100) {
            let x = float_of(i) * 0.5;
        }
        // ...and exactly one thread per process talks to MPI.
        single {
            total = MPI_Allreduce(1.0, SUM);
        }
    }
    print(total);
    MPI_Finalize();
}
"#;

fn main() {
    // 1. Compile: parse, type-check, lower to the CFG the analysis uses.
    let unit = parse_and_check("quickstart.mh", PROGRAM).expect("program compiles");
    let module = lower_program(&unit.program, &unit.signatures);

    // 2. Static phase (paper §2): the three properties.
    let report = AnalysisSession::builder().build().check_module(&module);
    println!("--- static analysis ---");
    println!("{}", report.render(&unit.source_map));
    assert!(report.is_clean(), "this program is correct by construction");

    // 3. Instrumentation (paper §3) — selective: a clean program gets no
    // checks at all.
    let (instrumented, stats) = instrument_module(&module, &report, InstrumentMode::Selective);
    println!(
        "\n--- instrumentation ---\ninserted checks: {}",
        stats.total()
    );

    // 4. Run on the simulated hybrid runtime: 3 MPI ranks × 4 threads.
    let run = Executor::new(
        instrumented,
        RunConfig {
            ranks: 3,
            default_threads: 4,
            ..RunConfig::default()
        },
    )
    .run();
    println!("\n--- execution (3 ranks × 4 threads) ---");
    for line in &run.output {
        println!("{line}");
    }
    assert!(run.is_clean(), "{:?}", run.errors);
    println!("run completed cleanly — every rank saw Allreduce = 3");
}
