//! # parcoach — facade crate
//!
//! Re-exports the public API of the PARCOACH-hybrid reproduction so that
//! examples, integration tests and downstream users need a single
//! dependency. See `README.md` for the architecture and `DESIGN.md` for
//! the paper-to-crate mapping.

pub use parcoach_core as analysis;
pub use parcoach_front as front;
pub use parcoach_interp as interp;
pub use parcoach_ir as ir;
pub use parcoach_mpisim as mpisim;
pub use parcoach_ompsim as ompsim;
pub use parcoach_pool as pool;
pub use parcoach_workloads as workloads;
